//! Observability: parse-event hooks, a sampling profiler, span
//! tracing for the serve pool, and periodic metrics export.
//!
//! Three layers, all dependency-free:
//!
//! * **Hooks.** The [`Observer`] trait (re-exported from
//!   `flap-fuse`) is the event vocabulary both execution engines
//!   emit: committed tokens and skip runs, reductions, nonterminal
//!   dispatches, stream feed boundaries, incremental reuse. Every
//!   hook has an empty `#[inline(always)]` default and the engines
//!   are monomorphized over the observer type, so the unobserved
//!   entry points ([`NoopObserver`]) compile to exactly the code
//!   that existed before the hooks — the *zero-overhead invariant*,
//!   guarded by the steady-state allocation audit and the `fig11`
//!   benchmark snapshot.
//! * **Profiling.** [`ParseProfiler`] accumulates a per-grammar
//!   profile — bytes skipped vs lexed, a token-class histogram,
//!   reductions by rule, automaton-row heat — with bounded
//!   allocation; `flap-bench --profile` renders it.
//! * **Tracing & export.** [`TraceRecorder`] collects timed spans
//!   (queue-wait vs execution per pool job, one lane per worker) and
//!   writes them as Chrome trace-event JSON readable by Perfetto or
//!   `chrome://tracing`; [`MetricsEmitter`] snapshots a pool's
//!   [`Metrics`] on an interval as JSON
//!   lines. Attach both through
//!   [`PoolConfig::trace`](crate::serve::PoolConfig::trace) and
//!   [`MetricsEmitter::start`].

use std::fmt;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::serve::Metrics;

pub use flap_fuse::{NoopObserver, Observer, ParseProfiler};

/// One completed span: a named interval on a worker lane.
#[derive(Clone, Debug)]
struct Span {
    name: &'static str,
    /// Lane (Chrome `tid`): the pool worker index.
    tid: u32,
    /// Start, µs since the recorder's epoch.
    ts_us: u64,
    /// Duration in µs.
    dur_us: u64,
    /// Payload size recorded in the span's `args`.
    bytes: u64,
}

/// Records timed spans and writes them as Chrome trace-event JSON.
///
/// A recorder is shared (`Arc`) between the code being traced — e.g.
/// a [`ParsePool`](crate::serve::ParsePool) configured with
/// [`PoolConfig::trace`](crate::serve::PoolConfig::trace) — and
/// whoever eventually calls [`TraceRecorder::write_chrome_json`].
/// Recording a span is one `Mutex` push onto a growing vector; this
/// is an explicitly *enabled* diagnostic mode, never on the default
/// path, so the zero-overhead invariant is untouched.
///
/// The output is the Chrome trace-event format: a JSON object whose
/// `traceEvents` array holds one `ph:"X"` (complete) event per span
/// plus `ph:"M"` thread-name metadata per lane. Open it in Perfetto
/// (<https://ui.perfetto.dev>) or `chrome://tracing`.
pub struct TraceRecorder {
    epoch: Instant,
    spans: Mutex<Vec<Span>>,
}

impl TraceRecorder {
    /// A recorder whose time origin is "now".
    pub fn new() -> TraceRecorder {
        TraceRecorder {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Records one completed span on lane `tid` from `start` to
    /// `end`, with `bytes` of payload noted in the span's args.
    /// Instants before the recorder's epoch clamp to it.
    pub fn span(&self, name: &'static str, tid: u32, start: Instant, end: Instant, bytes: u64) {
        let ts_us = start.saturating_duration_since(self.epoch).as_micros() as u64;
        let dur_us = end.saturating_duration_since(start).as_micros() as u64;
        self.spans.lock().unwrap().push(Span {
            name,
            tid,
            ts_us,
            dur_us,
            bytes,
        });
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().unwrap().len()
    }

    /// Whether no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes everything recorded so far as Chrome trace-event JSON:
    /// `{"traceEvents":[...]}` with one complete (`ph:"X"`) event per
    /// span and a `thread_name` metadata event per worker lane.
    ///
    /// # Errors
    ///
    /// Propagates `w`'s I/O errors.
    pub fn write_chrome_json<W: Write>(&self, mut w: W) -> io::Result<()> {
        let spans = self.spans.lock().unwrap();
        write!(w, "{{\"traceEvents\":[")?;
        let mut first = true;
        let mut lanes: Vec<u32> = spans.iter().map(|s| s.tid).collect();
        lanes.sort_unstable();
        lanes.dedup();
        for tid in lanes {
            if !first {
                write!(w, ",")?;
            }
            first = false;
            write!(
                w,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"worker-{tid}\"}}}}"
            )?;
        }
        for s in spans.iter() {
            if !first {
                write!(w, ",")?;
            }
            first = false;
            write!(
                w,
                "{{\"name\":\"{}\",\"cat\":\"serve\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{},\"dur\":{},\"args\":{{\"bytes\":{}}}}}",
                escape(s.name),
                s.tid,
                s.ts_us,
                s.dur_us,
                s.bytes
            )?;
        }
        write!(w, "]}}")
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new()
    }
}

impl fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TraceRecorder {{ spans: {} }}", self.len())
    }
}

/// JSON string escaping (quotes, backslashes, control characters),
/// shared with the metrics JSON emitters.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Periodically writes a pool's metrics snapshot as one JSON line per
/// interval — a scrape loop in a thread, no exporter dependency.
///
/// Start one with [`MetricsEmitter::start`] over the `Arc<Metrics>`
/// from [`ParsePool::metrics_arc`](crate::serve::ParsePool::metrics_arc);
/// the background thread emits a
/// [`MetricsSnapshot::to_json`](crate::serve::MetricsSnapshot::to_json)
/// line every `interval` and one final line on [`MetricsEmitter::stop`]
/// (also run on drop), so even runs shorter than the interval export a
/// terminal snapshot.
pub struct MetricsEmitter {
    stopped: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<thread::JoinHandle<()>>,
    finished: AtomicBool,
}

impl MetricsEmitter {
    /// Spawns the emitter thread: one JSON line to `w` per
    /// `interval`, plus a final line at stop.
    pub fn start<W: Write + Send + 'static>(
        metrics: Arc<Metrics>,
        interval: Duration,
        mut w: W,
    ) -> MetricsEmitter {
        let stopped = Arc::new((Mutex::new(false), Condvar::new()));
        let flag = Arc::clone(&stopped);
        let handle = thread::Builder::new()
            .name("flap-metrics".to_string())
            .spawn(move || {
                let (lock, cv) = &*flag;
                let mut stop = lock.lock().unwrap();
                loop {
                    if *stop {
                        break;
                    }
                    let (guard, timeout) = cv.wait_timeout(stop, interval).unwrap();
                    stop = guard;
                    if !*stop && timeout.timed_out() {
                        let line = metrics.snapshot().to_json();
                        if writeln!(w, "{line}").and_then(|()| w.flush()).is_err() {
                            break;
                        }
                    }
                }
                // terminal snapshot so short runs still export state
                let line = metrics.snapshot().to_json();
                let _ = writeln!(w, "{line}").and_then(|()| w.flush());
            })
            .expect("spawn metrics emitter");
        MetricsEmitter {
            stopped,
            handle: Some(handle),
            finished: AtomicBool::new(false),
        }
    }

    /// Stops the emitter: writes one final snapshot line and joins
    /// the thread. Implied by drop; explicit for visible sequencing.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        if self.finished.swap(true, Ordering::AcqRel) {
            return;
        }
        let (lock, cv) = &*self.stopped;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsEmitter {
    fn drop(&mut self) {
        self.halt();
    }
}

impl fmt::Debug for MetricsEmitter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MetricsEmitter {{ finished: {} }}",
            self.finished.load(Ordering::Relaxed)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_json_shape() {
        let t = TraceRecorder::new();
        let a = t.epoch;
        let b = a + Duration::from_micros(250);
        let c = a + Duration::from_micros(900);
        t.span("queue-wait", 0, a, b, 0);
        t.span("parse", 0, b, c, 42);
        t.span("parse", 1, a, c, 7);
        assert_eq!(t.len(), 3);
        let mut out = Vec::new();
        t.write_chrome_json(&mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("{\"traceEvents\":["), "{s}");
        assert!(s.ends_with("]}"), "{s}");
        // one thread_name metadata event per lane
        assert_eq!(s.matches("\"thread_name\"").count(), 2);
        assert_eq!(s.matches("\"ph\":\"X\"").count(), 3);
        assert!(s.contains("\"dur\":250"), "{s}");
        assert!(s.contains("\"bytes\":42"), "{s}");
    }

    #[test]
    fn span_clamps_to_epoch() {
        let t = TraceRecorder::new();
        let before = t
            .epoch
            .checked_sub(Duration::from_secs(5))
            .unwrap_or(t.epoch);
        t.span("x", 0, before, t.epoch, 0);
        let mut out = Vec::new();
        t.write_chrome_json(&mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("\"ts\":0"), "{s}");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
