//! A persistent parse service: a long-lived worker pool with
//! admission control, panic isolation and built-in metrics.
//!
//! [`Parser::parse_batch`](crate::Parser::parse_batch) spawns scoped
//! threads on every call, which is the right shape for a one-off
//! batch but not for a server fielding millions of small requests:
//! there, thread spawn cost must be amortized, concurrency must be
//! bounded, overload must be *rejected* rather than buffered without
//! limit, and a panicking semantic action must kill one request — not
//! the process. [`ParsePool`] provides exactly that substrate:
//!
//! * **Worker pool.** N long-lived worker threads, each owning one
//!   reusable [`ParseSession`], share the compiled tables behind an
//!   `Arc`. After warm-up, serving a job allocates nothing — the same
//!   zero-allocation steady state as
//!   [`parse_with`](flap_staged::CompiledParser::parse_with), now
//!   behind a queue.
//! * **Admission control.** The submission queue is bounded.
//!   [`ParsePool::submit`] blocks until space frees up;
//!   [`ParsePool::try_submit`] returns [`SubmitError::Busy`]
//!   immediately — explicit backpressure a caller can convert into
//!   load shedding, and a `rejected` counter that makes overload
//!   visible.
//! * **Completion façade.** Submission returns a [`JobHandle`] with
//!   blocking [`wait`](Handle::wait), non-blocking
//!   [`try_wait`](Handle::try_wait) and
//!   [`wait_timeout`](Handle::wait_timeout) — a poll interface an
//!   async runtime can drive without this crate taking any
//!   dependency — or, via [`ParsePool::submit_with_callback`], a
//!   callback invoked on the worker at completion.
//! * **Streaming jobs.** [`ParsePool::open_stream`] parks a
//!   suspendable session in the pool; each
//!   [`StreamJob::feed`] submits one chunk as a queue job, so a
//!   connection's bytes are parsed incrementally by whichever worker
//!   is free while the connection itself never runs parse code.
//! * **Panic isolation.** A panicking semantic action fails its own
//!   job with [`JobError::Panicked`]; the worker whose session the
//!   unwind poisoned is replaced by a fresh thread. The pool and
//!   every other job keep going.
//! * **Graceful shutdown.** Dropping the pool (or calling
//!   [`ParsePool::shutdown`]) closes the queue, drains every
//!   already-accepted job, and joins the workers.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use flap::serve::{JobError, PoolConfig};
//! use flap::{Cfe, LexerBuilder, Parser};
//!
//! let mut lx = LexerBuilder::new();
//! let atom = lx.token("atom", "[a-z]+")?;
//! lx.skip(" ")?;
//! let lexer = lx.build()?;
//! let grammar: Cfe<i64> =
//!     Cfe::fix(|x| Cfe::eps_with(|| 0).or(Cfe::tok_val(atom, 1).then(x, |a, b| a + b)));
//! let parser = Parser::compile(lexer, &grammar)?;
//!
//! let pool = parser.serve(PoolConfig::default().workers(2).queue_capacity(8));
//!
//! // one-shot jobs: submit bytes, wait (or poll) the handle
//! let handle = pool.submit(&b"hello world"[..]).unwrap();
//! assert_eq!(handle.wait(), Ok(2));
//!
//! // shared inputs avoid the copy: Arc<[u8]> submissions are zero-copy
//! let doc: Arc<[u8]> = Arc::from(&b"one two three"[..]);
//! assert_eq!(pool.submit(doc).unwrap().wait(), Ok(3));
//!
//! // streaming: chunks of one connection, parsed on pool workers
//! let mut stream = pool.open_stream();
//! stream.feed(&b"ab cd "[..]).unwrap().wait().unwrap();
//! let done = stream.finish().unwrap().wait().unwrap();
//! assert_eq!(done.into_value(), Some(2));
//!
//! let m = pool.metrics().snapshot();
//! assert_eq!(m.parse_errors + m.panicked, 0);
//! assert!(m.completed >= 4);
//! pool.shutdown(); // drains and joins; also implied by drop
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use flap_fuse::{FusedParseError, Step};
use flap_staged::{CompiledParser, ParseSession};

use crate::cache::CacheCounters;
use crate::obs::TraceRecorder;

mod metrics;

pub use metrics::{LatencyHistogram, Metrics, MetricsSnapshot, LATENCY_BUCKETS};

use metrics::Outcome;

/// Configuration for [`ParsePool`]; start from `default()` and
/// override with the chainable setters.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    workers: usize,
    queue_capacity: usize,
    label: String,
    trace: Option<Arc<TraceRecorder>>,
    cache: Option<Arc<CacheCounters>>,
}

impl Default for PoolConfig {
    /// Auto-sized: one worker per available core, queue capacity
    /// twice the worker count, label `"pool"`, tracing off.
    fn default() -> Self {
        PoolConfig {
            workers: 0,
            queue_capacity: 0,
            label: "pool".to_string(),
            trace: None,
            cache: None,
        }
    }
}

impl PoolConfig {
    /// Number of worker threads; `0` (the default) selects
    /// [`std::thread::available_parallelism`].
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Submission-queue capacity — the backpressure bound; `0` (the
    /// default) selects twice the worker count. Sizing guidance: a
    /// couple of jobs per worker keeps workers busy across the
    /// submit/complete handoff; anything much larger only adds queue
    /// latency before rejection kicks in.
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Label reported in metrics snapshots — typically the grammar
    /// name, so a multi-pool server gets a per-grammar breakdown.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Attaches a span recorder: every job the pool runs emits a
    /// queue-wait span (submission to dequeue) and an execution span
    /// (dequeue to completion) on its worker's lane. Write the
    /// collected spans out with
    /// [`TraceRecorder::write_chrome_json`]. Off by default; the
    /// untraced path does no timing work beyond the existing latency
    /// metric.
    pub fn trace(mut self, recorder: Arc<TraceRecorder>) -> Self {
        self.trace = Some(recorder);
        self
    }

    /// Attaches a compile cache's counters (from
    /// [`ParserCache::counters`](crate::cache::ParserCache::counters))
    /// so this pool's [`MetricsSnapshot`] reports `cache_hits`,
    /// `cache_misses` and `cache_evictions` alongside its own
    /// counters. Set automatically by
    /// [`ParserCache::pool`](crate::cache::ParserCache::pool);
    /// unattached pools report zeros.
    pub fn cache_counters(mut self, counters: Arc<CacheCounters>) -> Self {
        self.cache = Some(counters);
        self
    }

    fn resolve(&self) -> (usize, usize) {
        let workers = match self.workers {
            0 => thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        };
        let capacity = match self.queue_capacity {
            0 => workers * 2,
            n => n,
        };
        (workers, capacity)
    }
}

/// The bytes of one parse job. `Owned` moves a buffer in; `Shared`
/// submits an `Arc<[u8]>` without copying — the right choice when the
/// same document is parsed repeatedly or the caller keeps the bytes.
#[derive(Clone)]
pub enum JobInput {
    /// A caller-owned buffer, moved into the job.
    Owned(Vec<u8>),
    /// A shared buffer; submission clones the `Arc`, not the bytes.
    Shared(Arc<[u8]>),
}

impl JobInput {
    /// The payload bytes.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            JobInput::Owned(v) => v,
            JobInput::Shared(a) => a,
        }
    }
}

impl Default for JobInput {
    fn default() -> Self {
        JobInput::Owned(Vec::new())
    }
}

impl AsRef<[u8]> for JobInput {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl fmt::Debug for JobInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobInput::Owned(v) => write!(f, "JobInput::Owned({} bytes)", v.len()),
            JobInput::Shared(a) => write!(f, "JobInput::Shared({} bytes)", a.len()),
        }
    }
}

impl From<Vec<u8>> for JobInput {
    fn from(v: Vec<u8>) -> Self {
        JobInput::Owned(v)
    }
}

impl From<Arc<[u8]>> for JobInput {
    fn from(a: Arc<[u8]>) -> Self {
        JobInput::Shared(a)
    }
}

impl From<&[u8]> for JobInput {
    fn from(b: &[u8]) -> Self {
        JobInput::Owned(b.to_vec())
    }
}

impl From<String> for JobInput {
    fn from(s: String) -> Self {
        JobInput::Owned(s.into_bytes())
    }
}

/// Why a job failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The input did not parse; identical to the error a one-shot
    /// [`Parser::parse`](crate::Parser::parse) of the same bytes
    /// reports.
    Parse(FusedParseError),
    /// A semantic action panicked while running this job. The worker
    /// that ran it has been replaced; the pool is unaffected.
    Panicked(String),
    /// The pool was shut down before this job could be accepted.
    Shutdown,
    /// The result was already consumed by a successful
    /// [`Handle::try_wait`] / [`Handle::wait_timeout`] before
    /// [`Handle::wait`] ran — a caller-side protocol slip, reported
    /// as an error rather than a panic so mixed poll/block drivers
    /// stay total.
    ResultTaken,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Parse(e) => write!(f, "{e}"),
            JobError::Panicked(msg) => write!(f, "semantic action panicked: {msg}"),
            JobError::Shutdown => write!(f, "pool is shut down"),
            JobError::ResultTaken => write!(f, "job result already taken"),
        }
    }
}

impl std::error::Error for JobError {}

/// Why a submission was refused. Every variant hands the input back
/// so the caller can retry (or shed the load) without another copy.
#[derive(Debug)]
pub enum SubmitError {
    /// The queue is full ([`ParsePool::try_submit`] only) — the
    /// backpressure signal. Counted in the `rejected` metric.
    Busy(JobInput),
    /// The pool has been shut down.
    Closed(JobInput),
    /// [`ParsePool::submit_into`]: the handle still holds an
    /// in-flight or unconsumed result.
    HandleBusy(JobInput),
    /// [`StreamJob::feed`]: the previous feed has not completed yet;
    /// chunks of one stream are strictly ordered.
    FeedInFlight(JobInput),
    /// [`StreamJob::feed`]: the stream already finished (completed,
    /// failed, or lost its session to a panic).
    StreamFinished(JobInput),
}

impl SubmitError {
    /// Recovers the input that was not submitted. (Empty for a
    /// refused [`StreamJob::finish`], which carries no bytes.)
    pub fn into_input(self) -> JobInput {
        match self {
            SubmitError::Busy(i)
            | SubmitError::Closed(i)
            | SubmitError::HandleBusy(i)
            | SubmitError::FeedInFlight(i)
            | SubmitError::StreamFinished(i) => i,
        }
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Busy(_) => write!(f, "queue full"),
            SubmitError::Closed(_) => write!(f, "pool is shut down"),
            SubmitError::HandleBusy(_) => write!(f, "handle has an in-flight or unconsumed job"),
            SubmitError::FeedInFlight(_) => write!(f, "previous feed still in flight"),
            SubmitError::StreamFinished(_) => write!(f, "stream already finished"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What one [`StreamJob::feed`] produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FeedStatus<V> {
    /// The chunk was consumed; the stream expects more input (or a
    /// [`StreamJob::finish`]).
    NeedMore,
    /// The parse completed with this value ([`StreamJob::finish`],
    /// or a feed that proved completion impossible to extend).
    Done(V),
}

impl<V> FeedStatus<V> {
    /// The final value, if the stream completed.
    pub fn into_value(self) -> Option<V> {
        match self {
            FeedStatus::NeedMore => None,
            FeedStatus::Done(v) => Some(v),
        }
    }
}

/// The result of a one-shot parse job.
pub type JobHandle<V> = Handle<Result<V, JobError>>;

/// The result of one stream feed.
pub type FeedHandle<V> = Handle<Result<FeedStatus<V>, JobError>>;

// ---------------------------------------------------------------------------
// Completion slots and handles

enum SlotState<T> {
    Pending,
    Ready(T),
    Taken,
}

struct Slot<T> {
    state: Mutex<SlotState<T>>,
    cv: Condvar,
}

impl<T> Slot<T> {
    fn new() -> Arc<Slot<T>> {
        Arc::new(Slot {
            state: Mutex::new(SlotState::Pending),
            cv: Condvar::new(),
        })
    }

    fn fill(&self, value: T) {
        let mut st = self.state.lock().unwrap();
        debug_assert!(
            matches!(*st, SlotState::Pending),
            "completion slot filled twice"
        );
        *st = SlotState::Ready(value);
        drop(st);
        self.cv.notify_all();
    }

    /// Re-arms a consumed slot for reuse; `false` if a job is still
    /// in flight or its result has not been taken.
    fn rearm(&self) -> bool {
        let mut st = self.state.lock().unwrap();
        if matches!(*st, SlotState::Taken) {
            *st = SlotState::Pending;
            true
        } else {
            false
        }
    }
}

/// A completion handle: the poll/wait façade over one submitted job.
///
/// The two instantiations are [`JobHandle`] (one-shot parse jobs,
/// yielding `Result<V, JobError>`) and [`FeedHandle`] (stream feeds,
/// yielding `Result<FeedStatus<V>, JobError>`). Waiting never blocks
/// the pool: results are published by workers into a dedicated slot.
///
/// Async runtimes can drive a handle by polling
/// [`try_wait`](Handle::try_wait) (e.g. from a waker-driven timer)
/// — no executor integration or extra dependency is required.
pub struct Handle<T> {
    slot: Arc<Slot<T>>,
}

impl<T> Handle<T> {
    /// Whether the job has finished (its result may still be
    /// unconsumed).
    pub fn is_done(&self) -> bool {
        !matches!(*self.slot.state.lock().unwrap(), SlotState::Pending)
    }

    /// Takes the result if the job has finished, without blocking.
    /// Returns `None` while in flight — and after the result has
    /// already been taken by an earlier call.
    pub fn try_wait(&mut self) -> Option<T> {
        let mut st = self.slot.state.lock().unwrap();
        if matches!(*st, SlotState::Ready(_)) {
            match std::mem::replace(&mut *st, SlotState::Taken) {
                SlotState::Ready(v) => Some(v),
                _ => unreachable!(),
            }
        } else {
            None
        }
    }

    /// As [`Handle::try_wait`], but waits up to `timeout` for the job
    /// to finish first.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut st = self.slot.state.lock().unwrap();
        loop {
            if matches!(*st, SlotState::Ready(_)) {
                match std::mem::replace(&mut *st, SlotState::Taken) {
                    SlotState::Ready(v) => return Some(v),
                    _ => unreachable!(),
                }
            }
            if matches!(*st, SlotState::Taken) {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.slot.cv.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }
}

impl<T> Handle<Result<T, JobError>> {
    /// Blocks until the job finishes and returns its result.
    ///
    /// If the result was already consumed by a successful
    /// [`Handle::try_wait`] / [`Handle::wait_timeout`], returns
    /// [`JobError::ResultTaken`] instead of blocking forever (or
    /// panicking, as earlier versions did).
    pub fn wait(self) -> Result<T, JobError> {
        let mut st = self.slot.state.lock().unwrap();
        loop {
            match std::mem::replace(&mut *st, SlotState::Taken) {
                SlotState::Ready(v) => return v,
                SlotState::Taken => return Err(JobError::ResultTaken),
                SlotState::Pending => {
                    *st = SlotState::Pending;
                    st = self.slot.cv.wait(st).unwrap();
                }
            }
        }
    }
}

impl<T> fmt::Debug for Handle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Handle {{ done: {} }}", self.is_done())
    }
}

// ---------------------------------------------------------------------------
// Jobs and the shared pool state

/// Callback form of job completion: invoked on the worker thread as
/// soon as the job finishes.
pub type JobCallback<V> = Box<dyn FnOnce(Result<V, JobError>) + Send + 'static>;

enum ParseDone<V> {
    Slot(Arc<Slot<Result<V, JobError>>>),
    Call(JobCallback<V>),
}

impl<V> ParseDone<V> {
    fn fill(self, result: Result<V, JobError>) {
        match self {
            ParseDone::Slot(slot) => slot.fill(result),
            ParseDone::Call(cb) => cb(result),
        }
    }
}

enum Job<V> {
    Parse {
        input: JobInput,
        done: ParseDone<V>,
        enqueued: Instant,
    },
    Feed {
        stream: Arc<StreamInner<V>>,
        /// `None` signals end of input ([`StreamJob::finish`]).
        chunk: Option<JobInput>,
        done: Arc<Slot<Result<FeedStatus<V>, JobError>>>,
        enqueued: Instant,
    },
}

struct QueueState<V> {
    jobs: VecDeque<Job<V>>,
    open: bool,
}

struct Shared<V> {
    parser: Arc<CompiledParser<V>>,
    queue: Mutex<QueueState<V>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    metrics: Arc<Metrics>,
    trace: Option<Arc<TraceRecorder>>,
    label: String,
    /// Every live worker thread, appended by replacements; drained
    /// (and re-checked) by shutdown.
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
}

enum Refused {
    Full,
    Closed,
}

impl<V> Shared<V> {
    /// Locks the queue with room for one more job, or reports why it
    /// cannot accept one. Blocking mode waits for space.
    fn lock_for_push(&self, blocking: bool) -> Result<MutexGuard<'_, QueueState<V>>, Refused> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if !q.open {
                return Err(Refused::Closed);
            }
            if q.jobs.len() < self.capacity {
                return Ok(q);
            }
            if !blocking {
                return Err(Refused::Full);
            }
            q = self.not_full.wait(q).unwrap();
        }
    }

    /// Pushes under a guard obtained from `lock_for_push` and wakes a
    /// worker.
    fn push(&self, mut q: MutexGuard<'_, QueueState<V>>, job: Job<V>) {
        q.jobs.push_back(job);
        self.metrics.queue_len(q.jobs.len(), true);
        drop(q);
        self.metrics.job_submitted();
        self.not_empty.notify_one();
    }
}

// ---------------------------------------------------------------------------
// The pool

/// A long-lived pool of parse workers sharing one compiled parser.
///
/// See the [module docs](self) for the full story and an example.
pub struct ParsePool<V> {
    shared: Arc<Shared<V>>,
}

impl<V: Send + 'static> ParsePool<V> {
    /// Spawns `config.workers` threads over the shared compiled
    /// tables. The pool runs until [`ParsePool::shutdown`] or drop.
    pub fn new(parser: Arc<CompiledParser<V>>, config: PoolConfig) -> ParsePool<V> {
        let (workers, capacity) = config.resolve();
        let shared = Arc::new(Shared {
            parser,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(capacity),
                open: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            metrics: Arc::new(Metrics::new(
                &config.label,
                workers,
                capacity,
                config.cache.clone(),
            )),
            trace: config.trace,
            label: config.label,
            threads: Mutex::new(Vec::with_capacity(workers)),
        });
        {
            let mut threads = shared.threads.lock().unwrap();
            for ix in 0..workers {
                threads.push(spawn_worker(&shared, ix));
            }
        }
        ParsePool { shared }
    }

    /// Submits one input, blocking while the queue is full — the
    /// cooperative entry point for callers that prefer waiting over
    /// shedding.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] after shutdown.
    pub fn submit(&self, input: impl Into<JobInput>) -> Result<JobHandle<V>, SubmitError> {
        self.submit_inner(input.into(), true)
    }

    /// Submits one input without blocking: if the queue is full the
    /// job is *rejected* with [`SubmitError::Busy`] (and counted in
    /// the `rejected` metric) — the admission-control entry point.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] under backpressure,
    /// [`SubmitError::Closed`] after shutdown; both return the input.
    pub fn try_submit(&self, input: impl Into<JobInput>) -> Result<JobHandle<V>, SubmitError> {
        self.submit_inner(input.into(), false)
    }

    fn submit_inner(&self, input: JobInput, blocking: bool) -> Result<JobHandle<V>, SubmitError> {
        match self.shared.lock_for_push(blocking) {
            Err(Refused::Full) => {
                self.shared.metrics.job_rejected();
                Err(SubmitError::Busy(input))
            }
            Err(Refused::Closed) => Err(SubmitError::Closed(input)),
            Ok(q) => {
                let slot = Slot::new();
                let handle = JobHandle {
                    slot: Arc::clone(&slot),
                };
                self.shared.push(
                    q,
                    Job::Parse {
                        input,
                        done: ParseDone::Slot(slot),
                        enqueued: Instant::now(),
                    },
                );
                Ok(handle)
            }
        }
    }

    /// Re-submits into an existing, already-consumed handle instead
    /// of allocating a new completion slot: with a
    /// [`JobInput::Shared`] input this makes the entire
    /// submit-to-result round trip allocation-free at steady state
    /// (audited in the integration tests). Blocks while the queue is
    /// full.
    ///
    /// # Errors
    ///
    /// [`SubmitError::HandleBusy`] if `handle` has an in-flight job
    /// or an unconsumed result; [`SubmitError::Closed`] after
    /// shutdown.
    pub fn submit_into(
        &self,
        input: impl Into<JobInput>,
        handle: &JobHandle<V>,
    ) -> Result<(), SubmitError> {
        let input = input.into();
        match self.shared.lock_for_push(true) {
            Err(Refused::Full) => unreachable!("blocking push cannot see a full queue"),
            Err(Refused::Closed) => Err(SubmitError::Closed(input)),
            Ok(q) => {
                if !handle.slot.rearm() {
                    return Err(SubmitError::HandleBusy(input));
                }
                self.shared.push(
                    q,
                    Job::Parse {
                        input,
                        done: ParseDone::Slot(Arc::clone(&handle.slot)),
                        enqueued: Instant::now(),
                    },
                );
                Ok(())
            }
        }
    }

    /// Submits with a completion callback instead of a handle: the
    /// callback runs on the worker thread the moment the job
    /// finishes — the hook for executors that want to wake a task
    /// rather than poll. Keep it short; the worker is not serving
    /// anyone while it runs. Blocks while the queue is full.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] after shutdown.
    pub fn submit_with_callback(
        &self,
        input: impl Into<JobInput>,
        callback: JobCallback<V>,
    ) -> Result<(), SubmitError> {
        let input = input.into();
        match self.shared.lock_for_push(true) {
            Err(Refused::Full) => unreachable!("blocking push cannot see a full queue"),
            Err(Refused::Closed) => Err(SubmitError::Closed(input)),
            Ok(q) => {
                self.shared.push(
                    q,
                    Job::Parse {
                        input,
                        done: ParseDone::Call(callback),
                        enqueued: Instant::now(),
                    },
                );
                Ok(())
            }
        }
    }

    /// Opens a streaming job: a suspendable parse whose input arrives
    /// chunk by chunk via [`StreamJob::feed`]. The session state
    /// (automaton state, partial-token tail, line/column) is parked
    /// in the pool between chunks; each chunk is parsed by whichever
    /// worker picks it up, and results are byte-identical to a
    /// one-shot parse of the concatenation.
    pub fn open_stream(&self) -> StreamJob<V> {
        StreamJob {
            shared: Arc::clone(&self.shared),
            inner: Arc::new(StreamInner {
                session: Mutex::new(Some(ParseSession::new())),
                pending: AtomicBool::new(false),
                finished: AtomicBool::new(false),
            }),
        }
    }

    /// Parses a batch through the pool, returning one result per
    /// input in input order — the long-lived-service counterpart of
    /// [`Parser::parse_batch`](crate::Parser::parse_batch): worker
    /// threads and sessions are reused across calls instead of
    /// re-spawned per call. Submission blocks under backpressure, so
    /// batches larger than the queue are fine.
    pub fn parse_batch<I>(&self, inputs: I) -> Vec<Result<V, JobError>>
    where
        I: IntoIterator,
        I::Item: Into<JobInput>,
    {
        let handles: Vec<Option<JobHandle<V>>> = inputs
            .into_iter()
            .map(|input| self.submit(input).ok())
            .collect();
        handles
            .into_iter()
            .map(|h| match h {
                Some(h) => h.wait(),
                None => Err(JobError::Shutdown),
            })
            .collect()
    }

    /// The pool's live metrics; call
    /// [`snapshot()`](Metrics::snapshot) for a reportable copy.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// A shared handle to the live metrics, for exporters that
    /// outlive a borrow — e.g.
    /// [`MetricsEmitter::start`](crate::obs::MetricsEmitter::start).
    pub fn metrics_arc(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.shared.metrics.snapshot().workers
    }

    /// Graceful shutdown: closes the queue, lets the workers drain
    /// every already-accepted job, and joins them. Implied by drop;
    /// provided explicitly so call sites can make the drain visible.
    pub fn shutdown(self) {
        self.close_and_join();
    }
}

impl<V> ParsePool<V> {
    fn close_and_join(&self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.open = false;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        // Replacement workers append to the registry before their
        // predecessor exits, so re-checking after each join round
        // cannot miss one.
        loop {
            let handles: Vec<_> = {
                let mut t = self.shared.threads.lock().unwrap();
                t.drain(..).collect()
            };
            if handles.is_empty() {
                return;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

impl<V> Drop for ParsePool<V> {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

// ---------------------------------------------------------------------------
// Streaming jobs

struct StreamInner<V> {
    /// The suspendable session, parked here between chunks; `None`
    /// only while a worker is advancing it (or after a panic lost
    /// it).
    session: Mutex<Option<ParseSession<V>>>,
    /// One feed in flight at a time: chunk order is the parse order.
    pending: AtomicBool,
    /// Set once the stream completed, failed, or broke; further
    /// feeds are refused at submission.
    finished: AtomicBool,
}

/// One streaming parse multiplexed over the pool: see
/// [`ParsePool::open_stream`].
///
/// Feeds are strictly ordered — a second [`StreamJob::feed`] before
/// the first completes is refused with [`SubmitError::FeedInFlight`]
/// (wait on the returned [`FeedHandle`], or poll it, first). One
/// stream therefore uses at most one worker at a time; concurrency
/// comes from many streams (connections) sharing the pool.
pub struct StreamJob<V> {
    shared: Arc<Shared<V>>,
    inner: Arc<StreamInner<V>>,
}

impl<V: Send + 'static> StreamJob<V> {
    /// Submits the next chunk (blocking while the queue is full).
    ///
    /// The handle yields [`FeedStatus::NeedMore`] when the chunk was
    /// consumed, or the job error that ended the stream.
    ///
    /// # Errors
    ///
    /// [`SubmitError::FeedInFlight`] while the previous feed is
    /// unfinished, [`SubmitError::StreamFinished`] once the stream
    /// ended, [`SubmitError::Closed`] after pool shutdown.
    pub fn feed(&mut self, chunk: impl Into<JobInput>) -> Result<FeedHandle<V>, SubmitError> {
        self.advance(Some(chunk.into()), true)
    }

    /// As [`StreamJob::feed`] without blocking on a full queue:
    /// refused with [`SubmitError::Busy`] instead.
    ///
    /// # Errors
    ///
    /// As [`StreamJob::feed`], plus [`SubmitError::Busy`].
    pub fn try_feed(&mut self, chunk: impl Into<JobInput>) -> Result<FeedHandle<V>, SubmitError> {
        self.advance(Some(chunk.into()), false)
    }

    /// Signals end of input; the handle yields [`FeedStatus::Done`]
    /// with the semantic value (or the parse error).
    ///
    /// # Errors
    ///
    /// As [`StreamJob::feed`].
    pub fn finish(&mut self) -> Result<FeedHandle<V>, SubmitError> {
        self.advance(None, true)
    }

    /// Whether the stream has reached a terminal state (value
    /// produced, parse failed, or session lost to a panic).
    pub fn is_finished(&self) -> bool {
        self.inner.finished.load(Ordering::Acquire)
    }

    fn advance(
        &mut self,
        chunk: Option<JobInput>,
        blocking: bool,
    ) -> Result<FeedHandle<V>, SubmitError> {
        if self.inner.finished.load(Ordering::Acquire) {
            return Err(SubmitError::StreamFinished(chunk.unwrap_or_default()));
        }
        if self.inner.pending.swap(true, Ordering::AcqRel) {
            return Err(SubmitError::FeedInFlight(chunk.unwrap_or_default()));
        }
        match self.shared.lock_for_push(blocking) {
            Err(refused) => {
                self.inner.pending.store(false, Ordering::Release);
                let input = chunk.unwrap_or_default();
                Err(match refused {
                    Refused::Full => {
                        self.shared.metrics.job_rejected();
                        SubmitError::Busy(input)
                    }
                    Refused::Closed => SubmitError::Closed(input),
                })
            }
            Ok(q) => {
                let slot = Slot::new();
                let handle = FeedHandle {
                    slot: Arc::clone(&slot),
                };
                self.shared.push(
                    q,
                    Job::Feed {
                        stream: Arc::clone(&self.inner),
                        chunk,
                        done: slot,
                        enqueued: Instant::now(),
                    },
                );
                Ok(handle)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Workers

fn spawn_worker<V: Send + 'static>(shared: &Arc<Shared<V>>, ix: usize) -> thread::JoinHandle<()> {
    let s = Arc::clone(shared);
    thread::Builder::new()
        .name(format!("flap-serve:{}:{ix}", shared.label))
        .spawn(move || worker_loop(s, ix))
        .expect("spawn parse worker")
}

enum AfterJob {
    Continue,
    /// The worker's own session was poisoned by an unwind; the
    /// caller must replace this worker.
    Replace,
}

fn worker_loop<V: Send + 'static>(shared: Arc<Shared<V>>, ix: usize) {
    let mut session: ParseSession<V> = ParseSession::new();
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    shared.metrics.queue_len(q.jobs.len(), false);
                    break Some(job);
                }
                if !q.open {
                    break None;
                }
                q = shared.not_empty.wait(q).unwrap();
            }
        };
        let Some(job) = job else { return };
        shared.not_full.notify_one();
        match run_job(&shared, &mut session, job, ix) {
            AfterJob::Continue => {}
            AfterJob::Replace => {
                match thread::Builder::new()
                    .name(format!("flap-serve:{}:{ix}", shared.label))
                    .spawn({
                        let s = Arc::clone(&shared);
                        move || worker_loop(s, ix)
                    }) {
                    Ok(h) => {
                        // register before exiting so shutdown's
                        // re-check sees the replacement
                        shared.threads.lock().unwrap().push(h);
                        return;
                    }
                    Err(_) => {
                        // cannot spawn (resource exhaustion): keep
                        // this thread alive with a fresh session
                        // rather than losing a worker
                        session = ParseSession::new();
                    }
                }
            }
        }
    }
}

/// Emits the queue-wait and execution spans for one finished job on
/// worker lane `ix`. `run_start` is `Some` exactly when the pool was
/// configured with a [`TraceRecorder`]; the untraced path costs one
/// `Option` branch per job.
fn trace_job<V>(
    shared: &Shared<V>,
    ix: usize,
    name: &'static str,
    enqueued: Instant,
    run_start: Option<Instant>,
    bytes: u64,
) {
    if let (Some(t), Some(rs)) = (&shared.trace, run_start) {
        let end = Instant::now();
        t.span("queue-wait", ix as u32, enqueued, rs, 0);
        t.span(name, ix as u32, rs, end, bytes);
    }
}

fn run_job<V: Send + 'static>(
    shared: &Shared<V>,
    session: &mut ParseSession<V>,
    job: Job<V>,
    ix: usize,
) -> AfterJob {
    let run_start = shared.trace.as_ref().map(|_| Instant::now());
    match job {
        Job::Parse {
            input,
            done,
            enqueued,
        } => {
            let bytes = input.as_bytes().len();
            let result = catch_unwind(AssertUnwindSafe(|| {
                shared.parser.parse_with(session, input.as_bytes())
            }));
            let latency = enqueued.elapsed().as_micros() as u64;
            trace_job(shared, ix, "parse", enqueued, run_start, bytes as u64);
            match result {
                Ok(Ok(v)) => {
                    shared
                        .metrics
                        .job_finished(Outcome::Completed, bytes, latency);
                    done.fill(Ok(v));
                    AfterJob::Continue
                }
                Ok(Err(e)) => {
                    shared
                        .metrics
                        .job_finished(Outcome::ParseError, bytes, latency);
                    done.fill(Err(JobError::Parse(e)));
                    AfterJob::Continue
                }
                Err(payload) => {
                    shared
                        .metrics
                        .job_finished(Outcome::Panicked, bytes, latency);
                    // count the replacement before waking the waiter,
                    // so a metrics read right after wait() sees it
                    shared.metrics.worker_replaced();
                    done.fill(Err(JobError::Panicked(panic_message(payload))));
                    // the unwind may have left the session stacks
                    // mid-parse: discard the worker along with it
                    AfterJob::Replace
                }
            }
        }
        Job::Feed {
            stream,
            chunk,
            done,
            enqueued,
        } => {
            let bytes = chunk.as_ref().map_or(0, |c| c.as_bytes().len());
            let name = if chunk.is_some() { "feed" } else { "finish" };
            let taken = stream.session.lock().unwrap().take();
            let Some(mut stream_session) = taken else {
                // defensive: unreachable while the `finished` gate
                // holds, but never wedge a caller on a lost session
                stream.finished.store(true, Ordering::Release);
                shared.metrics.job_finished(
                    Outcome::Panicked,
                    bytes,
                    enqueued.elapsed().as_micros() as u64,
                );
                stream.pending.store(false, Ordering::Release);
                done.fill(Err(JobError::Panicked(
                    "stream session lost to an earlier panic".to_string(),
                )));
                return AfterJob::Continue;
            };
            let step = catch_unwind(AssertUnwindSafe(|| match chunk {
                Some(c) => {
                    let mut sp = shared.parser.stream(&mut stream_session);
                    sp.feed(c.as_bytes())
                }
                None => shared.parser.stream(&mut stream_session).finish(),
            }));
            let latency = enqueued.elapsed().as_micros() as u64;
            trace_job(shared, ix, name, enqueued, run_start, bytes as u64);
            match step {
                Ok(step) => {
                    if !matches!(step, Step::NeedMore) {
                        stream.finished.store(true, Ordering::Release);
                    }
                    *stream.session.lock().unwrap() = Some(stream_session);
                    let (outcome, result) = match step {
                        Step::NeedMore => (Outcome::Completed, Ok(FeedStatus::NeedMore)),
                        Step::Done(v) => (Outcome::Completed, Ok(FeedStatus::Done(v))),
                        Step::Err(e) => (Outcome::ParseError, Err(JobError::Parse(e))),
                    };
                    shared.metrics.job_finished(outcome, bytes, latency);
                    // unset pending BEFORE filling the slot: a waiter
                    // wakes on fill and may feed again immediately
                    stream.pending.store(false, Ordering::Release);
                    done.fill(result);
                    AfterJob::Continue
                }
                Err(payload) => {
                    // the stream's session is poisoned (and dropped
                    // with `stream_session`); the worker's own
                    // session was not involved
                    stream.finished.store(true, Ordering::Release);
                    shared
                        .metrics
                        .job_finished(Outcome::Panicked, bytes, latency);
                    stream.pending.store(false, Ordering::Release);
                    done.fill(Err(JobError::Panicked(panic_message(payload))));
                    AfterJob::Continue
                }
            }
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flap_cfe::Cfe;
    use flap_lex::LexerBuilder;

    fn word_pool(action: fn(&[u8]) -> i64, config: PoolConfig) -> ParsePool<i64> {
        let mut b = LexerBuilder::new();
        let word = b.token("word", "[a-z]+").unwrap();
        b.skip(" ").unwrap();
        let lexer = b.build().unwrap();
        let g: Cfe<i64> =
            Cfe::fix(|x| Cfe::eps_with(|| 0).or(Cfe::tok_with(word, action).then(x, |a, b| a + b)));
        let parser = crate::Parser::compile(lexer, &g).unwrap();
        parser.serve(config)
    }

    #[test]
    fn submit_wait_roundtrip() {
        let pool = word_pool(|_| 1, PoolConfig::default().workers(2).label("words"));
        let h = pool.submit(&b"a b c"[..]).unwrap();
        assert_eq!(h.wait(), Ok(3));
        let mut h = pool.submit(&b"a b"[..]).unwrap();
        // poll until done
        let r = loop {
            if let Some(r) = h.try_wait() {
                break r;
            }
            thread::yield_now();
        };
        assert_eq!(r, Ok(2));
        let m = pool.metrics().snapshot();
        assert_eq!(m.submitted, 2);
        assert_eq!(m.completed, 2);
        assert_eq!(m.bytes_parsed, 8);
    }

    #[test]
    fn parse_errors_match_one_shot() {
        let pool = word_pool(|_| 1, PoolConfig::default().workers(1));
        let h = pool.submit(&b"a 7"[..]).unwrap();
        match h.wait() {
            Err(JobError::Parse(e)) => {
                assert!(e.line_col().0 >= 1);
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
        assert_eq!(pool.metrics().snapshot().parse_errors, 1);
    }

    #[test]
    fn callback_completion_runs_on_worker() {
        let pool = word_pool(|_| 1, PoolConfig::default().workers(1));
        let (tx, rx) = std::sync::mpsc::channel();
        pool.submit_with_callback(
            &b"x y z"[..],
            Box::new(move |r| {
                tx.send((r, thread::current().name().map(String::from)))
                    .unwrap();
            }),
        )
        .unwrap();
        let (r, name) = rx.recv().unwrap();
        assert_eq!(r, Ok(3));
        assert!(name.unwrap().starts_with("flap-serve:"), "worker thread");
    }

    #[test]
    fn shutdown_drains_accepted_jobs() {
        let pool = word_pool(|_| 1, PoolConfig::default().workers(2).queue_capacity(64));
        let handles: Vec<_> = (0..32).map(|_| pool.submit(&b"a b"[..]).unwrap()).collect();
        pool.shutdown();
        for h in handles {
            assert_eq!(h.wait(), Ok(2), "accepted jobs must complete before join");
        }
    }

    #[test]
    fn submit_after_shutdown_is_closed() {
        let pool = word_pool(|_| 1, PoolConfig::default().workers(1));
        let shared = Arc::clone(&pool.shared);
        pool.shutdown();
        let pool = ParsePool { shared };
        match pool.submit(&b"a"[..]) {
            Err(SubmitError::Closed(input)) => assert_eq!(input.as_bytes(), b"a"),
            other => panic!("expected Closed, got {other:?}"),
        }
        // forget the resurrected wrapper's second drop bookkeeping:
        // close_and_join is idempotent, so a plain drop is fine
        drop(pool);
    }

    #[test]
    fn stream_job_matches_one_shot() {
        let pool = word_pool(|_| 1, PoolConfig::default().workers(2));
        let mut s = pool.open_stream();
        for chunk in [&b"ab cd"[..], b" ef", b"gh"] {
            assert_eq!(s.feed(chunk).unwrap().wait(), Ok(FeedStatus::NeedMore));
        }
        assert!(!s.is_finished());
        assert_eq!(s.finish().unwrap().wait(), Ok(FeedStatus::Done(3)));
        assert!(s.is_finished());
        match s.feed(&b"more"[..]) {
            Err(SubmitError::StreamFinished(_)) => {}
            other => panic!("expected StreamFinished, got {other:?}"),
        }
    }

    #[test]
    fn handle_reuse_via_submit_into() {
        let pool = word_pool(|_| 1, PoolConfig::default().workers(1));
        let input: Arc<[u8]> = Arc::from(&b"a b c d"[..]);
        let h = pool.submit(input.clone()).unwrap();
        assert_eq!(h.wait(), Ok(4));
        // handle consumed by wait(): the slot is gone with it, so use
        // the try_wait flavor to keep the handle alive across jobs
        let mut h = pool.submit(input.clone()).unwrap();
        assert_eq!(h.wait_timeout(Duration::from_secs(10)), Some(Ok(4)));
        for _ in 0..3 {
            pool.submit_into(input.clone(), &h).unwrap();
            assert_eq!(h.wait_timeout(Duration::from_secs(10)), Some(Ok(4)));
        }
        // busy handle: re-arm must be refused while a result is pending
        pool.submit_into(input.clone(), &h).unwrap();
        match pool.submit_into(input.clone(), &h) {
            Err(SubmitError::HandleBusy(_)) => {}
            Ok(()) => panic!("double submit_into on one handle must be refused"),
            Err(other) => panic!("expected HandleBusy, got {other:?}"),
        }
        assert_eq!(h.wait_timeout(Duration::from_secs(10)), Some(Ok(4)));
    }
}
