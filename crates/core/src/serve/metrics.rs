//! Dependency-free service metrics: atomic counters plus a
//! fixed-bucket latency histogram.
//!
//! Every [`ParsePool`](super::ParsePool) owns one [`Metrics`]; workers
//! and submitters update it with relaxed atomics (no locks, no
//! allocation — the counters live on the job hot path and must not
//! disturb the zero-allocation steady state). [`Metrics::snapshot`]
//! reads a consistent-enough point-in-time copy for reporting, and
//! [`MetricsSnapshot`] renders as a compact text report via
//! `Display`.
//!
//! Latencies are recorded in power-of-two microsecond buckets
//! (bucket *i* holds completions with latency < 2^*i* µs), which is
//! coarse but fixed-size: recording is one `fetch_add` on an array
//! slot, and quantile estimates come out as tight upper bounds.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::cache::CacheCounters;

/// Number of latency buckets; bucket `i < BUCKETS-1` counts
/// completions with latency < 2^i µs, the last bucket catches
/// everything slower (≥ ~35 minutes — effectively "stuck").
pub const LATENCY_BUCKETS: usize = 32;

/// Live counters for one [`ParsePool`](super::ParsePool). All updates
/// are relaxed atomics; read a coherent view with
/// [`Metrics::snapshot`].
pub struct Metrics {
    label: Box<str>,
    workers: usize,
    queue_capacity: usize,
    submitted: AtomicU64,
    completed: AtomicU64,
    parse_errors: AtomicU64,
    panicked: AtomicU64,
    rejected: AtomicU64,
    workers_replaced: AtomicU64,
    bytes_parsed: AtomicU64,
    queue_depth: AtomicU64,
    queue_high_water: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
    /// Shared compile-cache counters, when the pool was built through
    /// a [`ParserCache`](crate::cache::ParserCache) (or had counters
    /// attached via `PoolConfig::cache_counters`). Snapshots report
    /// zeros when absent.
    cache: Option<Arc<CacheCounters>>,
}

impl Metrics {
    pub(super) fn new(
        label: &str,
        workers: usize,
        queue_capacity: usize,
        cache: Option<Arc<CacheCounters>>,
    ) -> Metrics {
        Metrics {
            label: label.into(),
            workers,
            queue_capacity,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            parse_errors: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            workers_replaced: AtomicU64::new(0),
            bytes_parsed: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
            latency: [const { AtomicU64::new(0) }; LATENCY_BUCKETS],
            cache,
        }
    }

    pub(super) fn job_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn job_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn worker_replaced(&self) {
        self.workers_replaced.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the queue length after a push or pop; pushes also
    /// advance the high-water mark.
    pub(super) fn queue_len(&self, len: usize, push: bool) {
        self.queue_depth.store(len as u64, Ordering::Relaxed);
        if push {
            self.queue_high_water
                .fetch_max(len as u64, Ordering::Relaxed);
        }
    }

    /// Records a finished job: its outcome, the bytes it parsed and
    /// its submit-to-completion latency.
    pub(super) fn job_finished(&self, outcome: Outcome, bytes: usize, latency_us: u64) {
        match outcome {
            Outcome::Completed => &self.completed,
            Outcome::ParseError => &self.parse_errors,
            Outcome::Panicked => &self.panicked,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.bytes_parsed.fetch_add(bytes as u64, Ordering::Relaxed);
        self.latency[bucket_of(latency_us)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter, suitable for reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            label: self.label.to_string(),
            workers: self.workers,
            queue_capacity: self.queue_capacity,
            submitted: load(&self.submitted),
            completed: load(&self.completed),
            parse_errors: load(&self.parse_errors),
            panicked: load(&self.panicked),
            rejected: load(&self.rejected),
            workers_replaced: load(&self.workers_replaced),
            bytes_parsed: load(&self.bytes_parsed),
            queue_depth: load(&self.queue_depth),
            queue_high_water: load(&self.queue_high_water),
            cache_hits: self.cache.as_deref().map_or(0, CacheCounters::hits),
            cache_misses: self.cache.as_deref().map_or(0, CacheCounters::misses),
            cache_evictions: self.cache.as_deref().map_or(0, CacheCounters::evictions),
            latency_us: LatencyHistogram {
                buckets: std::array::from_fn(|i| load(&self.latency[i])),
            },
        }
    }
}

/// How a job ended, for [`Metrics::job_finished`].
#[derive(Clone, Copy, Debug)]
pub(super) enum Outcome {
    /// Produced a semantic value (or a mid-stream `NeedMore`).
    Completed,
    /// The input failed to parse.
    ParseError,
    /// A semantic action panicked.
    Panicked,
}

/// The histogram bucket for a latency in microseconds: the number of
/// significant bits, so bucket `i` covers `[2^(i-1), 2^i)` µs and a
/// sample in bucket `i` is guaranteed to be `< 2^i` µs.
fn bucket_of(us: u64) -> usize {
    ((u64::BITS - us.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
}

/// A point-in-time copy of a pool's [`Metrics`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// The pool's label (e.g. the grammar it serves).
    pub label: String,
    /// Configured worker count.
    pub workers: usize,
    /// Configured submission-queue capacity.
    pub queue_capacity: usize,
    /// Jobs accepted into the queue (parse jobs and stream feeds).
    pub submitted: u64,
    /// Jobs that produced a value (including mid-stream `NeedMore`).
    pub completed: u64,
    /// Jobs that failed with a parse error.
    pub parse_errors: u64,
    /// Jobs killed by a panicking semantic action.
    pub panicked: u64,
    /// `try_submit` calls refused because the queue was full.
    pub rejected: u64,
    /// Workers replaced after a panic poisoned their session.
    pub workers_replaced: u64,
    /// Input bytes handed to finished jobs.
    pub bytes_parsed: u64,
    /// Queue length at snapshot time.
    pub queue_depth: u64,
    /// Deepest the queue has ever been.
    pub queue_high_water: u64,
    /// Compile-cache lookups served from a ready entry (zero when no
    /// [`ParserCache`](crate::cache::ParserCache) counters are
    /// attached to the pool).
    pub cache_hits: u64,
    /// Compile-cache lookups that ran a compilation.
    pub cache_misses: u64,
    /// Compile-cache entries evicted by the capacity bound.
    pub cache_evictions: u64,
    /// Submit-to-completion latency histogram.
    pub latency_us: LatencyHistogram,
}

impl MetricsSnapshot {
    /// Jobs that reached a terminal state, whatever it was.
    pub fn finished(&self) -> u64 {
        self.completed + self.parse_errors + self.panicked
    }

    /// The text report (same as `Display`).
    pub fn render(&self) -> String {
        self.to_string()
    }

    /// One compact JSON object (no trailing newline) with every
    /// counter plus latency percentiles and raw buckets — the line
    /// format emitted by
    /// [`MetricsEmitter`](crate::obs::MetricsEmitter) and by
    /// `flap-serve --stats-json`. Hand-rolled; no serializer
    /// dependency.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str(&format!(
            "{{\"label\":\"{}\",\"workers\":{},\"queue_capacity\":{},\"submitted\":{},\
             \"completed\":{},\"parse_errors\":{},\"panicked\":{},\"rejected\":{},\
             \"workers_replaced\":{},\"bytes_parsed\":{},\"queue_depth\":{},\
             \"queue_high_water\":{}",
            crate::obs::escape(&self.label),
            self.workers,
            self.queue_capacity,
            self.submitted,
            self.completed,
            self.parse_errors,
            self.panicked,
            self.rejected,
            self.workers_replaced,
            self.bytes_parsed,
            self.queue_depth,
            self.queue_high_water,
        ));
        s.push_str(&format!(
            ",\"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{}",
            self.cache_hits, self.cache_misses, self.cache_evictions,
        ));
        let h = &self.latency_us;
        s.push_str(&format!(
            ",\"latency\":{{\"count\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"buckets\":[",
            h.count(),
            h.p50_us(),
            h.p90_us(),
            h.p99_us(),
        ));
        for (i, b) in h.buckets.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&b.to_string());
        }
        s.push_str("]}}");
        s
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pool {:?}: {} workers, queue capacity {}",
            self.label, self.workers, self.queue_capacity
        )?;
        writeln!(
            f,
            "  jobs     submitted {}, completed {}, parse errors {}, panicked {}, rejected {}",
            self.submitted, self.completed, self.parse_errors, self.panicked, self.rejected
        )?;
        writeln!(
            f,
            "  queue    depth {}, high-water {}",
            self.queue_depth, self.queue_high_water
        )?;
        writeln!(f, "  workers  replaced {}", self.workers_replaced)?;
        writeln!(
            f,
            "  cache    hits {}, misses {}, evictions {}",
            self.cache_hits, self.cache_misses, self.cache_evictions
        )?;
        writeln!(f, "  volume   {} bytes parsed", self.bytes_parsed)?;
        let h = &self.latency_us;
        if h.count() == 0 {
            write!(f, "  latency  no samples")
        } else {
            write!(
                f,
                "  latency  p50 < {}, p90 < {}, p99 < {} ({} samples)",
                format_us(h.quantile_upper_us(0.50)),
                format_us(h.quantile_upper_us(0.90)),
                format_us(h.quantile_upper_us(0.99)),
                h.count()
            )
        }
    }
}

/// Submit-to-completion latencies in power-of-two microsecond
/// buckets: `buckets[i]` counts completions with latency < 2^i µs
/// (and ≥ 2^(i-1) µs for i > 0); the last bucket is a catch-all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Raw bucket counts.
    pub buckets: [u64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper bound (µs) on the median latency; see
    /// [`LatencyHistogram::quantile_upper_us`].
    pub fn p50_us(&self) -> u64 {
        self.quantile_upper_us(0.50)
    }

    /// Upper bound (µs) on the 90th-percentile latency.
    pub fn p90_us(&self) -> u64 {
        self.quantile_upper_us(0.90)
    }

    /// Upper bound (µs) on the 99th-percentile latency.
    pub fn p99_us(&self) -> u64 {
        self.quantile_upper_us(0.99)
    }

    /// An upper bound (in µs) on the `q`-quantile latency: the
    /// exclusive upper edge of the bucket containing it. Returns 0
    /// when no samples have been recorded.
    pub fn quantile_upper_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << i.min(63);
            }
        }
        u64::MAX
    }
}

/// `123µs` / `1.5ms` / `2.0s`, for the text report.
fn format_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{:.1}s", us as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_upper_bounds() {
        let m = Metrics::new("t", 1, 4, None);
        // 90 fast completions (~100µs bucket) and 10 slow (~10ms)
        for _ in 0..90 {
            m.job_finished(Outcome::Completed, 10, 100);
        }
        for _ in 0..10 {
            m.job_finished(Outcome::Completed, 10, 10_000);
        }
        let s = m.snapshot();
        assert_eq!(s.completed, 100);
        assert_eq!(s.bytes_parsed, 1000);
        assert_eq!(s.latency_us.count(), 100);
        // 100µs has 7 bits -> bucket 7, upper bound 128µs
        assert_eq!(s.latency_us.quantile_upper_us(0.5), 128);
        // 10_000µs has 14 bits -> bucket 14, upper bound 16384µs
        assert_eq!(s.latency_us.quantile_upper_us(0.99), 16384);
        assert!(s.render().contains("p50 < 128µs"), "{}", s.render());
    }

    #[test]
    fn bucket_boundaries_at_exact_powers_of_two() {
        // bucket i holds samples with < 2^i µs: an exact power 2^k
        // has k+1 significant bits, so it lands in bucket k+1 and its
        // quantile upper bound is 2^(k+1), never its own value
        for k in 0..10u32 {
            let us = 1u64 << k;
            assert_eq!(bucket_of(us), (k + 1) as usize, "2^{k}");
            let m = Metrics::new("b", 1, 1, None);
            m.job_finished(Outcome::Completed, 0, us);
            assert_eq!(m.snapshot().latency_us.p50_us(), 1u64 << (k + 1), "2^{k}");
        }
        // one below the power stays in the lower bucket
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
    }

    #[test]
    fn zero_latency_lands_in_bucket_zero() {
        assert_eq!(bucket_of(0), 0);
        let m = Metrics::new("z", 1, 1, None);
        m.job_finished(Outcome::Completed, 0, 0);
        let h = m.snapshot().latency_us;
        assert_eq!(h.buckets[0], 1);
        // the 0-bucket's exclusive upper edge is 2^0 = 1µs
        assert_eq!(h.p50_us(), 1);
        assert_eq!(h.p99_us(), 1);
    }

    #[test]
    fn huge_latencies_saturate_the_last_bucket() {
        let m = Metrics::new("s", 1, 1, None);
        for us in [u64::MAX, u64::MAX / 2, 1u64 << 40] {
            m.job_finished(Outcome::Completed, 0, us);
        }
        let h = m.snapshot().latency_us;
        assert_eq!(h.buckets[LATENCY_BUCKETS - 1], 3);
        assert_eq!(h.p50_us(), 1u64 << (LATENCY_BUCKETS - 1));
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Metrics::new("e", 1, 1, None).snapshot().latency_us;
        assert_eq!(h.count(), 0);
        assert_eq!((h.p50_us(), h.p90_us(), h.p99_us()), (0, 0, 0));
    }

    #[test]
    fn snapshot_json_is_complete_and_escaped() {
        let m = Metrics::new("a\"b", 2, 4, None);
        m.job_submitted();
        m.job_finished(Outcome::Completed, 7, 100);
        let json = m.snapshot().to_json();
        assert!(json.starts_with("{\"label\":\"a\\\"b\""), "{json}");
        for needle in [
            "\"workers\":2",
            "\"queue_capacity\":4",
            "\"submitted\":1",
            "\"completed\":1",
            "\"bytes_parsed\":7",
            "\"p50_us\":128",
            "\"buckets\":[0,",
        ] {
            assert!(json.contains(needle), "missing {needle:?} in {json}");
        }
        assert!(json.ends_with("]}}"), "{json}");
    }

    #[test]
    fn cache_counters_flow_into_snapshot_json_and_display() {
        // Unattached: the fields exist and are zero — consumers of the
        // JSON schema see the same keys whether or not a cache is wired.
        let bare = Metrics::new("bare", 1, 1, None).snapshot();
        assert_eq!(
            (bare.cache_hits, bare.cache_misses, bare.cache_evictions),
            (0, 0, 0)
        );
        assert!(bare.to_json().contains("\"cache_hits\":0"));

        // Attached: live counter values appear in snapshot, JSON and
        // the text report.
        let counters = Arc::new(CacheCounters::default());
        counters.hits.store(5, Ordering::Relaxed);
        counters.misses.store(2, Ordering::Relaxed);
        counters.evictions.store(1, Ordering::Relaxed);
        let m = Metrics::new("cached", 1, 1, Some(Arc::clone(&counters)));
        let s = m.snapshot();
        assert_eq!((s.cache_hits, s.cache_misses, s.cache_evictions), (5, 2, 1));
        let json = s.to_json();
        for needle in [
            "\"cache_hits\":5",
            "\"cache_misses\":2",
            "\"cache_evictions\":1",
        ] {
            assert!(json.contains(needle), "missing {needle:?} in {json}");
        }
        assert!(json.ends_with("]}}"), "latency stays last: {json}");
        assert!(
            s.render()
                .contains("cache    hits 5, misses 2, evictions 1"),
            "{}",
            s.render()
        );
    }

    #[test]
    fn snapshot_renders_every_counter() {
        let m = Metrics::new("json", 4, 8, None);
        m.job_submitted();
        m.job_rejected();
        m.worker_replaced();
        m.queue_len(3, true);
        m.job_finished(Outcome::Panicked, 5, 2);
        let s = m.snapshot();
        assert_eq!(
            (s.submitted, s.rejected, s.workers_replaced, s.panicked),
            (1, 1, 1, 1)
        );
        assert_eq!(s.queue_high_water, 3);
        assert_eq!(s.finished(), 1);
        let text = s.render();
        for needle in ["pool \"json\"", "rejected 1", "replaced 1", "high-water 3"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
