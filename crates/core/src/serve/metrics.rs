//! Dependency-free service metrics: atomic counters plus a
//! fixed-bucket latency histogram.
//!
//! Every [`ParsePool`](super::ParsePool) owns one [`Metrics`]; workers
//! and submitters update it with relaxed atomics (no locks, no
//! allocation — the counters live on the job hot path and must not
//! disturb the zero-allocation steady state). [`Metrics::snapshot`]
//! reads a consistent-enough point-in-time copy for reporting, and
//! [`MetricsSnapshot`] renders as a compact text report via
//! `Display`.
//!
//! Latencies are recorded in power-of-two microsecond buckets
//! (bucket *i* holds completions with latency < 2^*i* µs), which is
//! coarse but fixed-size: recording is one `fetch_add` on an array
//! slot, and quantile estimates come out as tight upper bounds.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of latency buckets; bucket `i < BUCKETS-1` counts
/// completions with latency < 2^i µs, the last bucket catches
/// everything slower (≥ ~35 minutes — effectively "stuck").
pub const LATENCY_BUCKETS: usize = 32;

/// Live counters for one [`ParsePool`](super::ParsePool). All updates
/// are relaxed atomics; read a coherent view with
/// [`Metrics::snapshot`].
pub struct Metrics {
    label: Box<str>,
    workers: usize,
    queue_capacity: usize,
    submitted: AtomicU64,
    completed: AtomicU64,
    parse_errors: AtomicU64,
    panicked: AtomicU64,
    rejected: AtomicU64,
    workers_replaced: AtomicU64,
    bytes_parsed: AtomicU64,
    queue_depth: AtomicU64,
    queue_high_water: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
}

impl Metrics {
    pub(super) fn new(label: &str, workers: usize, queue_capacity: usize) -> Metrics {
        Metrics {
            label: label.into(),
            workers,
            queue_capacity,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            parse_errors: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            workers_replaced: AtomicU64::new(0),
            bytes_parsed: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
            latency: [const { AtomicU64::new(0) }; LATENCY_BUCKETS],
        }
    }

    pub(super) fn job_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn job_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn worker_replaced(&self) {
        self.workers_replaced.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the queue length after a push or pop; pushes also
    /// advance the high-water mark.
    pub(super) fn queue_len(&self, len: usize, push: bool) {
        self.queue_depth.store(len as u64, Ordering::Relaxed);
        if push {
            self.queue_high_water
                .fetch_max(len as u64, Ordering::Relaxed);
        }
    }

    /// Records a finished job: its outcome, the bytes it parsed and
    /// its submit-to-completion latency.
    pub(super) fn job_finished(&self, outcome: Outcome, bytes: usize, latency_us: u64) {
        match outcome {
            Outcome::Completed => &self.completed,
            Outcome::ParseError => &self.parse_errors,
            Outcome::Panicked => &self.panicked,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.bytes_parsed.fetch_add(bytes as u64, Ordering::Relaxed);
        self.latency[bucket_of(latency_us)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter, suitable for reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            label: self.label.to_string(),
            workers: self.workers,
            queue_capacity: self.queue_capacity,
            submitted: load(&self.submitted),
            completed: load(&self.completed),
            parse_errors: load(&self.parse_errors),
            panicked: load(&self.panicked),
            rejected: load(&self.rejected),
            workers_replaced: load(&self.workers_replaced),
            bytes_parsed: load(&self.bytes_parsed),
            queue_depth: load(&self.queue_depth),
            queue_high_water: load(&self.queue_high_water),
            latency_us: LatencyHistogram {
                buckets: std::array::from_fn(|i| load(&self.latency[i])),
            },
        }
    }
}

/// How a job ended, for [`Metrics::job_finished`].
#[derive(Clone, Copy, Debug)]
pub(super) enum Outcome {
    /// Produced a semantic value (or a mid-stream `NeedMore`).
    Completed,
    /// The input failed to parse.
    ParseError,
    /// A semantic action panicked.
    Panicked,
}

/// The histogram bucket for a latency in microseconds: the number of
/// significant bits, so bucket `i` covers `[2^(i-1), 2^i)` µs and a
/// sample in bucket `i` is guaranteed to be `< 2^i` µs.
fn bucket_of(us: u64) -> usize {
    ((u64::BITS - us.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
}

/// A point-in-time copy of a pool's [`Metrics`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// The pool's label (e.g. the grammar it serves).
    pub label: String,
    /// Configured worker count.
    pub workers: usize,
    /// Configured submission-queue capacity.
    pub queue_capacity: usize,
    /// Jobs accepted into the queue (parse jobs and stream feeds).
    pub submitted: u64,
    /// Jobs that produced a value (including mid-stream `NeedMore`).
    pub completed: u64,
    /// Jobs that failed with a parse error.
    pub parse_errors: u64,
    /// Jobs killed by a panicking semantic action.
    pub panicked: u64,
    /// `try_submit` calls refused because the queue was full.
    pub rejected: u64,
    /// Workers replaced after a panic poisoned their session.
    pub workers_replaced: u64,
    /// Input bytes handed to finished jobs.
    pub bytes_parsed: u64,
    /// Queue length at snapshot time.
    pub queue_depth: u64,
    /// Deepest the queue has ever been.
    pub queue_high_water: u64,
    /// Submit-to-completion latency histogram.
    pub latency_us: LatencyHistogram,
}

impl MetricsSnapshot {
    /// Jobs that reached a terminal state, whatever it was.
    pub fn finished(&self) -> u64 {
        self.completed + self.parse_errors + self.panicked
    }

    /// The text report (same as `Display`).
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pool {:?}: {} workers, queue capacity {}",
            self.label, self.workers, self.queue_capacity
        )?;
        writeln!(
            f,
            "  jobs     submitted {}, completed {}, parse errors {}, panicked {}, rejected {}",
            self.submitted, self.completed, self.parse_errors, self.panicked, self.rejected
        )?;
        writeln!(
            f,
            "  queue    depth {}, high-water {}",
            self.queue_depth, self.queue_high_water
        )?;
        writeln!(f, "  workers  replaced {}", self.workers_replaced)?;
        writeln!(f, "  volume   {} bytes parsed", self.bytes_parsed)?;
        let h = &self.latency_us;
        if h.count() == 0 {
            write!(f, "  latency  no samples")
        } else {
            write!(
                f,
                "  latency  p50 < {}, p90 < {}, p99 < {} ({} samples)",
                format_us(h.quantile_upper_us(0.50)),
                format_us(h.quantile_upper_us(0.90)),
                format_us(h.quantile_upper_us(0.99)),
                h.count()
            )
        }
    }
}

/// Submit-to-completion latencies in power-of-two microsecond
/// buckets: `buckets[i]` counts completions with latency < 2^i µs
/// (and ≥ 2^(i-1) µs for i > 0); the last bucket is a catch-all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Raw bucket counts.
    pub buckets: [u64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// An upper bound (in µs) on the `q`-quantile latency: the
    /// exclusive upper edge of the bucket containing it. Returns 0
    /// when no samples have been recorded.
    pub fn quantile_upper_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << i.min(63);
            }
        }
        u64::MAX
    }
}

/// `123µs` / `1.5ms` / `2.0s`, for the text report.
fn format_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{:.1}s", us as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_upper_bounds() {
        let m = Metrics::new("t", 1, 4);
        // 90 fast completions (~100µs bucket) and 10 slow (~10ms)
        for _ in 0..90 {
            m.job_finished(Outcome::Completed, 10, 100);
        }
        for _ in 0..10 {
            m.job_finished(Outcome::Completed, 10, 10_000);
        }
        let s = m.snapshot();
        assert_eq!(s.completed, 100);
        assert_eq!(s.bytes_parsed, 1000);
        assert_eq!(s.latency_us.count(), 100);
        // 100µs has 7 bits -> bucket 7, upper bound 128µs
        assert_eq!(s.latency_us.quantile_upper_us(0.5), 128);
        // 10_000µs has 14 bits -> bucket 14, upper bound 16384µs
        assert_eq!(s.latency_us.quantile_upper_us(0.99), 16384);
        assert!(s.render().contains("p50 < 128µs"), "{}", s.render());
    }

    #[test]
    fn snapshot_renders_every_counter() {
        let m = Metrics::new("json", 4, 8);
        m.job_submitted();
        m.job_rejected();
        m.worker_replaced();
        m.queue_len(3, true);
        m.job_finished(Outcome::Panicked, 5, 2);
        let s = m.snapshot();
        assert_eq!(
            (s.submitted, s.rejected, s.workers_replaced, s.panicked),
            (1, 1, 1, 1)
        );
        assert_eq!(s.queue_high_water, 3);
        assert_eq!(s.finished(), 1);
        let text = s.render();
        for needle in ["pool \"json\"", "rejected 1", "replaced 1", "high-water 3"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
