//! A typed, heterogeneous facade over the uniform-value core —
//! the paper's `'a pa` interface.
//!
//! flap's OCaml interface gives every parser its own result type:
//!
//! ```text
//! val tok : 'a tok -> 'a pa
//! val (>>>) : 'a pa -> 'b pa -> ('a * 'b) pa
//! val fix : ('a pa -> 'a pa) -> 'a pa
//! ```
//!
//! MetaOCaml erases this typing at staging time. Rust has no typed
//! staging, so the core pipeline works with a single value type per
//! grammar; this module recovers the heterogeneous interface by
//! smuggling values as `Rc<dyn Any>` and downcasting at the
//! combinator boundaries. Each value is produced and consumed exactly
//! once, so the downcasts cannot fail and the `Rc`s are never shared.
//!
//! Use this facade for ergonomics; use the uniform [`Cfe<V>`]
//! interface when you want to shave the `Any`-boxing off the hot
//! path.
//!
//! User closures must be `Send + Sync` (the core pipeline stores them
//! as `Arc<dyn Fn … + Send + Sync>` so compiled parsers are
//! shareable). The *values* smuggled through the facade stay
//! `Rc<dyn Any>`, so a `TypedParser` itself is single-threaded; the
//! uniform interface is the one to use for cross-thread parsing.
//!
//! # Examples
//!
//! ```
//! use flap::typed::{fix, tok, TypedCfe};
//! use flap::LexerBuilder;
//!
//! let mut lx = LexerBuilder::new();
//! let num = lx.token("num", "[0-9]+").unwrap();
//! let comma = lx.token("comma", ",").unwrap();
//! let lexer = lx.build().unwrap();
//!
//! // numbers separated by commas, as a genuine Vec<u32>
//! let number: TypedCfe<u32> =
//!     tok(num, |lx| std::str::from_utf8(lx).unwrap().parse().unwrap());
//! let sep = tok(comma, |_| ());
//! let list: TypedCfe<Vec<u32>> = fix(|rest: TypedCfe<Vec<u32>>| {
//!     let tail = sep.clone().then(rest).map(|((), v)| v).opt().map(Option::unwrap_or_default);
//!     number.clone().then(tail).map(|(h, mut t)| {
//!         t.insert(0, h);
//!         t
//!     })
//! });
//! let parser = list.compile(lexer).unwrap();
//! assert_eq!(parser.parse(b"1,2,34").unwrap(), vec![1, 2, 34]);
//! ```

use std::any::Any;
use std::marker::PhantomData;
use std::rc::Rc;

use flap_cfe::Cfe;
use flap_fuse::{ByteSource, FusedParseError, ReadSource, StreamError};
use flap_lex::{Lexer, Token};

use crate::parser::{CompileError, Parser};

/// The erased value representation used underneath the facade.
type Dyn = Rc<dyn Any>;

fn wrap<T: 'static>(v: T) -> Dyn {
    Rc::new(v)
}

fn unwrap<T: 'static>(v: Dyn) -> T {
    let rc = v
        .downcast::<T>()
        .expect("typed facade: value of unexpected type");
    Rc::try_unwrap(rc).unwrap_or_else(|_| panic!("typed facade: value aliased"))
}

/// A context-free expression with a typed semantic value, mirroring
/// the paper's `'a pa`.
pub struct TypedCfe<T> {
    inner: Cfe<Dyn>,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for TypedCfe<T> {
    fn clone(&self) -> Self {
        TypedCfe {
            inner: self.inner.clone(),
            _marker: PhantomData,
        }
    }
}

/// `⊥`: fails on every input.
pub fn bot<T>() -> TypedCfe<T> {
    TypedCfe {
        inner: Cfe::bot(),
        _marker: PhantomData,
    }
}

/// `ε`, yielding `f()`.
pub fn eps_with<T: 'static>(f: impl Fn() -> T + Send + Sync + 'static) -> TypedCfe<T> {
    TypedCfe {
        inner: Cfe::eps_with(move || wrap(f())),
        _marker: PhantomData,
    }
}

/// `ε`, yielding a constant.
pub fn eps<T: Clone + Send + Sync + 'static>(v: T) -> TypedCfe<T> {
    eps_with(move || v.clone())
}

/// A token, with its value computed from the lexeme bytes — the
/// paper's `tok`.
pub fn tok<T: 'static>(t: Token, f: impl Fn(&[u8]) -> T + Send + Sync + 'static) -> TypedCfe<T> {
    TypedCfe {
        inner: Cfe::tok_with(t, move |lx| wrap(f(lx))),
        _marker: PhantomData,
    }
}

/// The least fixed point — the paper's `fix`.
pub fn fix<T: 'static>(f: impl FnOnce(TypedCfe<T>) -> TypedCfe<T>) -> TypedCfe<T> {
    TypedCfe {
        inner: Cfe::fix(|var| {
            f(TypedCfe {
                inner: var,
                _marker: PhantomData,
            })
            .inner
        }),
        _marker: PhantomData,
    }
}

impl<T: 'static> TypedCfe<T> {
    /// Sequencing with a pair result — the paper's `>>>`.
    pub fn then<U: 'static>(self, next: TypedCfe<U>) -> TypedCfe<(T, U)> {
        TypedCfe {
            inner: self
                .inner
                .then(next.inner, |a, b| wrap((unwrap::<T>(a), unwrap::<U>(b)))),
            _marker: PhantomData,
        }
    }

    /// Alternation (both branches must produce the same type).
    pub fn or(self, other: TypedCfe<T>) -> TypedCfe<T> {
        TypedCfe {
            inner: self.inner.or(other.inner),
            _marker: PhantomData,
        }
    }

    /// Applies a function to the semantic value.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + Send + Sync + 'static) -> TypedCfe<U> {
        TypedCfe {
            inner: self.inner.map(move |v| wrap(f(unwrap::<T>(v)))),
            _marker: PhantomData,
        }
    }

    /// Zero or one occurrence.
    pub fn opt(self) -> TypedCfe<Option<T>> {
        self.map(Some).or(eps_with(|| None))
    }

    /// Compiles the expression against `lexer` into a typed parser.
    ///
    /// # Errors
    ///
    /// As [`Parser::compile`].
    pub fn compile(&self, lexer: Lexer) -> Result<TypedParser<T>, CompileError> {
        Ok(TypedParser {
            inner: Parser::compile(lexer, &self.inner)?,
            _marker: PhantomData,
        })
    }

    /// The underlying uniform-value expression.
    pub fn erase(&self) -> Cfe<Dyn> {
        self.inner.clone()
    }
}

/// Zero or more repetitions, collected into a `Vec`.
///
/// Built as `μα. ε ∨ g·α`; element values are prepended, so the cost
/// is quadratic in the repetition length — acceptable for the
/// convenience facade, avoidable with the uniform interface.
pub fn star<T: 'static>(g: TypedCfe<T>) -> TypedCfe<Vec<T>> {
    fix(|rest: TypedCfe<Vec<T>>| {
        eps_with(Vec::new).or(g.clone().then(rest).map(|(h, mut t)| {
            t.insert(0, h);
            t
        }))
    })
}

/// A compiled parser with a typed result.
pub struct TypedParser<T> {
    inner: Parser<Dyn>,
    _marker: PhantomData<fn() -> T>,
}

impl<T: 'static> TypedParser<T> {
    /// Parses a complete input.
    ///
    /// # Errors
    ///
    /// As [`Parser::parse`].
    pub fn parse(&self, input: &[u8]) -> Result<T, FusedParseError> {
        self.inner.parse(input).map(unwrap::<T>)
    }

    /// Parses an entire [`ByteSource`] — the typed face of the
    /// streaming API. (A `TypedParser` is single-threaded, so the
    /// session is managed internally.)
    ///
    /// # Errors
    ///
    /// [`StreamError`] on either an I/O failure of the source or a
    /// parse failure of the input.
    pub fn parse_source(&self, source: &mut impl ByteSource) -> Result<T, StreamError> {
        self.inner.parse_source(source).map(unwrap::<T>)
    }

    /// Parses straight from a [`std::io::Read`] through an internal
    /// chunk buffer.
    ///
    /// # Errors
    ///
    /// As for [`TypedParser::parse_source`].
    pub fn parse_reader(&self, reader: impl std::io::Read) -> Result<T, StreamError> {
        self.parse_source(&mut ReadSource::new(reader))
    }

    /// The untyped parser underneath (for metrics and inspection).
    pub fn inner(&self) -> &Parser<Dyn> {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flap_lex::LexerBuilder;

    #[test]
    fn pairs_and_maps() {
        let mut b = LexerBuilder::new();
        let a = b.token("a", "a").unwrap();
        let n = b.token("n", "[0-9]+").unwrap();
        let lexer = b.build().unwrap();
        let g: TypedCfe<(String, u32)> = tok(a, |_| "a".to_string()).then(tok(n, |lx| {
            std::str::from_utf8(lx).unwrap().parse().unwrap()
        }));
        let p = g.compile(lexer).unwrap();
        assert_eq!(p.parse(b"a42").unwrap(), ("a".to_string(), 42));
    }

    #[test]
    fn star_collects_vectors() {
        let mut b = LexerBuilder::new();
        let w = b.token("w", "[a-z]+").unwrap();
        b.skip(" ").unwrap();
        let lpar = b.token("lpar", r"\(").unwrap();
        let rpar = b.token("rpar", r"\)").unwrap();
        let lexer = b.build().unwrap();
        // ( word* ) — star is fine in non-leading position
        let words: TypedCfe<Vec<String>> =
            star(tok(w, |lx| String::from_utf8(lx.to_vec()).unwrap()));
        let list = tok(lpar, |_| ())
            .then(words)
            .then(tok(rpar, |_| ()))
            .map(|(((), ws), ())| ws);
        let p = list.compile(lexer).unwrap();
        assert_eq!(
            p.parse(b"(hello brave world)").unwrap(),
            vec!["hello", "brave", "world"]
        );
        assert_eq!(p.parse(b"()").unwrap(), Vec::<String>::new());
    }

    #[test]
    fn nullable_left_of_seq_is_rejected_as_in_the_paper() {
        // τ₁ ⊛ τ₂ demands ¬τ₁.Null: `word* "."` must be rewritten in
        // fixed-point form. The facade surfaces the same type error.
        let mut b = LexerBuilder::new();
        let w = b.token("w", "[a-z]+").unwrap();
        let stop = b.token("stop", r"\.").unwrap();
        let lexer = b.build().unwrap();
        let bad = star(tok(w, |_| ())).then(tok(stop, |_| ()));
        assert!(matches!(bad.compile(lexer), Err(CompileError::Type(_))));
    }

    #[test]
    fn typed_streaming_from_a_reader() {
        let mut b = LexerBuilder::new();
        let n = b.token("n", "[0-9]+").unwrap();
        let comma = b.token("comma", ",").unwrap();
        let lexer = b.build().unwrap();
        let number: TypedCfe<u32> = tok(n, |lx| std::str::from_utf8(lx).unwrap().parse().unwrap());
        let list = fix(|rest: TypedCfe<Vec<u32>>| {
            let tail = tok(comma, |_| ())
                .then(rest)
                .map(|((), v)| v)
                .opt()
                .map(Option::unwrap_or_default);
            number.clone().then(tail).map(|(h, mut t)| {
                t.insert(0, h);
                t
            })
        });
        let p = list.compile(lexer).unwrap();
        // 2-byte reads split the multi-digit lexemes across chunks
        let reader = std::io::Cursor::new(&b"10,203,3,4567"[..]);
        let mut src = ReadSource::with_capacity(reader, 2);
        assert_eq!(p.parse_source(&mut src).unwrap(), vec![10, 203, 3, 4567]);
        assert!(p.parse_reader(std::io::Cursor::new(&b"1,,2"[..])).is_err());
    }

    #[test]
    fn typed_sexp_tree() {
        #[derive(Debug, PartialEq)]
        enum Sexp {
            Atom(String),
            List(Vec<Sexp>),
        }
        let mut b = LexerBuilder::new();
        let atom = b.token("atom", "[a-z]+").unwrap();
        b.skip("[ \n]").unwrap();
        let lpar = b.token("lpar", r"\(").unwrap();
        let rpar = b.token("rpar", r"\)").unwrap();
        let lexer = b.build().unwrap();
        let g: TypedCfe<Sexp> = fix(|sexp: TypedCfe<Sexp>| {
            let items = star(sexp);
            tok(lpar, |_| ())
                .then(items)
                .then(tok(rpar, |_| ()))
                .map(|(((), xs), ())| Sexp::List(xs))
                .or(tok(atom, |lx| {
                    Sexp::Atom(String::from_utf8(lx.to_vec()).unwrap())
                }))
        });
        let p = g.compile(lexer).unwrap();
        assert_eq!(
            p.parse(b"(x (y) ())").unwrap(),
            Sexp::List(vec![
                Sexp::Atom("x".into()),
                Sexp::List(vec![Sexp::Atom("y".into())]),
                Sexp::List(vec![]),
            ])
        );
    }

    #[test]
    fn ill_typed_rejected_through_facade() {
        let mut b = LexerBuilder::new();
        let a = b.token("a", "a").unwrap();
        let lexer = b.build().unwrap();
        let g: TypedCfe<u8> = tok(a, |_| 1).or(tok(a, |_| 2));
        assert!(g.compile(lexer).is_err());
    }
}
