//! A grammar-keyed compile cache for multi-tenant serving.
//!
//! Compiling a grammar is orders of magnitude more expensive than
//! parsing a document (see `flap-bench --bin boot`), so a server that
//! fields parse requests for many tenants' grammars must not compile
//! on every request. [`ParserCache`] maps a *content hash* of the
//! grammar — computed by [`grammar_key`] over the lexer rules and the
//! grammar's syntax tree — to a shared [`CompiledParser`], with:
//!
//! * **Single-flight compilation.** When several threads miss on the
//!   same key concurrently, exactly one runs the compile closure; the
//!   rest block on a condvar and receive the shared result. A failed
//!   compile wakes the waiters, and the next caller retries — errors
//!   are never cached.
//! * **Bounded capacity with LRU eviction.** The cache holds at most
//!   `capacity` ready parsers; inserting past that evicts the least
//!   recently *used* entry (in-flight compilations are never
//!   evicted). Tables are behind `Arc`s, so evicting a parser that a
//!   pool still serves is safe — the pool keeps its clone alive.
//! * **Counters.** Hits, misses, evictions and in-flight compiles are
//!   tracked in a shared [`CacheCounters`], which plugs into the
//!   serving metrics via
//!   [`PoolConfig::cache_counters`](crate::serve::PoolConfig::cache_counters)
//!   so `flap-serve --stats-json` reports cache effectiveness next to
//!   queue depth and latency.
//!
//! # Sizing guidance
//!
//! Size the cache to the *working set of distinct grammars*, not the
//! request rate: each entry costs one compiled table block (tens of
//! kilobytes for the paper's grammars — see `table1`'s footprint
//! report). A capacity a little above the number of concurrently
//! active tenants makes evictions rare; watch the `cache_evictions`
//! counter, and grow the capacity if it climbs while `cache_hits`
//! stalls.
//!
//! # Key caveat
//!
//! [`grammar_key`] hashes the grammar's *shape* — lexer rules (regex
//! syntax, token names, skip/return actions) and the combinator tree
//! (with `Fix`/`Var` binding hashed by de Bruijn level, so keys are
//! stable across processes). Semantic *actions* are opaque closures
//! and are **not** hashed: two grammars that differ only in action
//! code collide. When tenants supply actions independently of grammar
//! shape, salt the key (e.g. `key ^ tenant_id`) or include an action
//! version in it.
//!
//! # Example
//!
//! ```
//! use flap::cache::{grammar_key, ParserCache};
//! use flap::{Cfe, LexerBuilder, Parser};
//!
//! let cache: ParserCache<i64> = ParserCache::new(8);
//!
//! let mut lx = LexerBuilder::new();
//! let atom = lx.token("atom", "[a-z]+")?;
//! lx.skip(" ")?;
//! let lexer = lx.build()?;
//! let grammar: Cfe<i64> =
//!     Cfe::fix(|x| Cfe::eps_with(|| 0).or(Cfe::tok_val(atom, 1).then(x, |a, b| a + b)));
//!
//! let key = grammar_key(&lexer, &grammar);
//! let compile = || Parser::compile(lexer, &grammar).map(|p| p.compiled_arc());
//! let first = cache.get_or_compile(key, compile)?;
//! let again = cache.get_or_compile::<flap::CompileError>(key, || unreachable!("cached"))?;
//! assert!(std::sync::Arc::ptr_eq(&first, &again));
//! assert_eq!(cache.counters().hits(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use flap_artifact::Fnv64;
use flap_cfe::{Cfe, CfeNode, VarId};
use flap_lex::{LexAction, Lexer};
use flap_staged::CompiledParser;

use crate::serve::{ParsePool, PoolConfig};

/// Shared, lock-free counters for one [`ParserCache`]. Clone the
/// `Arc` into [`PoolConfig::cache_counters`] to surface these in pool
/// metrics snapshots.
#[derive(Debug, Default)]
pub struct CacheCounters {
    pub(crate) hits: AtomicU64,
    pub(crate) misses: AtomicU64,
    pub(crate) evictions: AtomicU64,
    pub(crate) inflight: AtomicU64,
}

impl CacheCounters {
    /// Lookups served from a ready entry (including waiters that
    /// blocked on an in-flight compile and received its result).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran the compile closure.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Ready entries discarded to enforce the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Compilations currently running (a gauge, not a counter).
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }
}

enum Entry<V> {
    Ready {
        parser: Arc<CompiledParser<V>>,
        last_used: u64,
    },
    InFlight,
}

struct CacheState<V> {
    entries: HashMap<u64, Entry<V>>,
    tick: u64,
}

/// A capacity-bounded, single-flight cache from [`grammar_key`]
/// hashes to compiled parsers. See the [module docs](self) for
/// semantics and sizing guidance.
pub struct ParserCache<V> {
    state: Mutex<CacheState<V>>,
    ready: Condvar,
    capacity: usize,
    counters: Arc<CacheCounters>,
}

impl<V> fmt::Debug for ParserCache<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParserCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<V> ParserCache<V> {
    /// A cache holding at most `capacity` ready parsers (a capacity
    /// of `0` is treated as `1`).
    pub fn new(capacity: usize) -> ParserCache<V> {
        ParserCache {
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                tick: 0,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            counters: Arc::new(CacheCounters::default()),
        }
    }

    /// The cache's counters; clone into
    /// [`PoolConfig::cache_counters`] to report them in pool metrics.
    pub fn counters(&self) -> Arc<CacheCounters> {
        Arc::clone(&self.counters)
    }

    /// Ready entries currently cached (in-flight compiles excluded).
    pub fn len(&self) -> usize {
        let st = self.state.lock().unwrap();
        st.entries
            .values()
            .filter(|e| matches!(e, Entry::Ready { .. }))
            .count()
    }

    /// `true` when no ready entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key` without compiling; touches the entry's LRU
    /// stamp on a hit but records neither a hit nor a miss.
    pub fn get(&self, key: u64) -> Option<Arc<CompiledParser<V>>> {
        let mut st = self.state.lock().unwrap();
        st.tick += 1;
        let tick = st.tick;
        match st.entries.get_mut(&key) {
            Some(Entry::Ready { parser, last_used }) => {
                *last_used = tick;
                Some(Arc::clone(parser))
            }
            _ => None,
        }
    }

    /// Returns the parser for `key`, running `compile` only if no
    /// ready or in-flight entry exists. Concurrent callers with the
    /// same key block until the single in-flight compile finishes and
    /// then share its result (counted as hits). A compile error is
    /// returned to the caller that ran it and is *not* cached; blocked
    /// waiters wake and retry with their own closure.
    pub fn get_or_compile<E>(
        &self,
        key: u64,
        compile: impl FnOnce() -> Result<Arc<CompiledParser<V>>, E>,
    ) -> Result<Arc<CompiledParser<V>>, E> {
        let mut st = self.state.lock().unwrap();
        loop {
            st.tick += 1;
            let tick = st.tick;
            match st.entries.get_mut(&key) {
                Some(Entry::Ready { parser, last_used }) => {
                    *last_used = tick;
                    self.counters.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(parser));
                }
                Some(Entry::InFlight) => {
                    st = self.ready.wait(st).unwrap();
                }
                None => break,
            }
        }

        // Miss: claim the key, compile outside the lock.
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        self.counters.inflight.fetch_add(1, Ordering::Relaxed);
        st.entries.insert(key, Entry::InFlight);
        drop(st);

        let result = compile();

        let mut st = self.state.lock().unwrap();
        self.counters.inflight.fetch_sub(1, Ordering::Relaxed);
        match result {
            Ok(parser) => {
                st.tick += 1;
                let tick = st.tick;
                st.entries.insert(
                    key,
                    Entry::Ready {
                        parser: Arc::clone(&parser),
                        last_used: tick,
                    },
                );
                self.evict_over_capacity(&mut st);
                self.ready.notify_all();
                Ok(parser)
            }
            Err(e) => {
                st.entries.remove(&key);
                self.ready.notify_all();
                Err(e)
            }
        }
    }

    /// Removes the entry for `key` (if ready), returning whether one
    /// was removed. In-flight compiles cannot be invalidated.
    pub fn invalidate(&self, key: u64) -> bool {
        let mut st = self.state.lock().unwrap();
        match st.entries.get(&key) {
            Some(Entry::Ready { .. }) => {
                st.entries.remove(&key);
                true
            }
            _ => false,
        }
    }

    /// Evicts least-recently-used ready entries until the ready count
    /// is back within capacity. Called with the lock held.
    fn evict_over_capacity(&self, st: &mut CacheState<V>) {
        loop {
            let ready = st
                .entries
                .iter()
                .filter(|(_, e)| matches!(e, Entry::Ready { .. }))
                .count();
            if ready <= self.capacity {
                return;
            }
            let victim = st
                .entries
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Ready { last_used, .. } => Some((*last_used, *k)),
                    Entry::InFlight => None,
                })
                .min()
                .map(|(_, k)| k);
            match victim {
                Some(k) => {
                    st.entries.remove(&k);
                    self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => return,
            }
        }
    }
}

impl<V: Send + 'static> ParserCache<V> {
    /// Builds a [`ParsePool`] over the cached parser for `key`,
    /// compiling it first if absent, with this cache's counters
    /// attached to the pool's metrics. `config.label` should name the
    /// grammar so the pool's snapshot identifies the tenant.
    pub fn pool<E>(
        &self,
        key: u64,
        compile: impl FnOnce() -> Result<Arc<CompiledParser<V>>, E>,
        config: PoolConfig,
    ) -> Result<ParsePool<V>, E> {
        let parser = self.get_or_compile(key, compile)?;
        Ok(ParsePool::new(
            parser,
            config.cache_counters(self.counters()),
        ))
    }
}

/// A stable FNV-1a content hash of a grammar's *shape*: the lexer's
/// rules (regex syntax, token index and name, skip/return action) and
/// the combinator tree of `grammar`, with `Fix`/`Var` binding encoded
/// by de Bruijn level so the key does not depend on the process-global
/// [`VarId`] allocator. Semantic actions are **not** hashed — see the
/// [module docs](self#key-caveat).
pub fn grammar_key<V>(lexer: &Lexer, grammar: &Cfe<V>) -> u64 {
    let mut h = Fnv64::new();
    h.update_str("flap-grammar-key-v1");
    h.update_u32(lexer.rule_count() as u32);
    for rule in lexer.rules() {
        match rule.action {
            LexAction::Skip => h.update_u32(0),
            LexAction::Return(t) => {
                h.update_u32(1);
                h.update_u32(t.index() as u32);
                h.update_str(lexer.token_name(t));
            }
        }
        h.update_str(&lexer.arena().display(rule.regex).to_string());
    }
    let mut scope: Vec<VarId> = Vec::new();
    hash_cfe(&mut h, grammar, &mut scope);
    h.finish()
}

fn hash_cfe<V>(h: &mut Fnv64, g: &Cfe<V>, scope: &mut Vec<VarId>) {
    match g.node() {
        CfeNode::Bot => h.update_u32(0),
        CfeNode::Eps(_) => h.update_u32(1),
        CfeNode::Tok(t, _) => {
            h.update_u32(2);
            h.update_u32(t.index() as u32);
        }
        CfeNode::Seq(a, b, _) => {
            h.update_u32(3);
            hash_cfe(h, a, scope);
            hash_cfe(h, b, scope);
        }
        CfeNode::Alt(a, b) => {
            h.update_u32(4);
            hash_cfe(h, a, scope);
            hash_cfe(h, b, scope);
        }
        CfeNode::Map(a, _) => {
            h.update_u32(5);
            hash_cfe(h, a, scope);
        }
        CfeNode::Fix(v, a) => {
            h.update_u32(6);
            scope.push(*v);
            hash_cfe(h, a, scope);
            scope.pop();
        }
        CfeNode::Var(v) => {
            h.update_u32(7);
            // de Bruijn level: position of the binder from the
            // outermost Fix. Unbound vars (impossible through the
            // public Cfe::fix API) hash as u32::MAX.
            let level = scope
                .iter()
                .position(|s| s == v)
                .map_or(u32::MAX, |i| i as u32);
            h.update_u32(level);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LexerBuilder, Parser};
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    fn word_lexer() -> Lexer {
        let mut lx = LexerBuilder::new();
        lx.token("atom", "[a-z]+").unwrap();
        lx.skip(" ").unwrap();
        lx.build().unwrap()
    }

    fn word_grammar(tok: flap_lex::Token) -> Cfe<i64> {
        Cfe::fix(move |x| Cfe::eps_with(|| 0).or(Cfe::tok_val(tok, 1).then(x, |a, b| a + b)))
    }

    fn compiled(g: &Cfe<i64>) -> Arc<CompiledParser<i64>> {
        Parser::compile(word_lexer(), g).unwrap().compiled_arc()
    }

    #[test]
    fn hit_returns_the_same_parser_and_counts() {
        let lexer = word_lexer();
        let tok = flap_lex::Token::from_index(0);
        let g = word_grammar(tok);
        let key = grammar_key(&lexer, &g);

        let cache: ParserCache<i64> = ParserCache::new(4);
        let a = cache
            .get_or_compile::<()>(key, || Ok(compiled(&g)))
            .unwrap();
        let b = cache
            .get_or_compile::<()>(key, || panic!("must not recompile"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.counters();
        assert_eq!((c.hits(), c.misses(), c.evictions()), (1, 1, 0));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(key).is_some());
        assert!(cache.get(key ^ 1).is_none());
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let tok = flap_lex::Token::from_index(0);
        let g = word_grammar(tok);
        let cache: ParserCache<i64> = ParserCache::new(2);
        for key in [10u64, 20, 30] {
            cache
                .get_or_compile::<()>(key, || Ok(compiled(&g)))
                .unwrap();
            // Touch key 10 so it stays hot; 20 becomes the LRU victim.
            cache.get(10);
        }
        assert_eq!(cache.counters().evictions(), 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(10).is_some(), "hot entry survived");
        assert!(cache.get(30).is_some(), "newest entry survived");
        assert!(cache.get(20).is_none(), "LRU entry evicted");
    }

    #[test]
    fn single_flight_compiles_once_under_contention() {
        let tok = flap_lex::Token::from_index(0);
        let cache: ParserCache<i64> = ParserCache::new(4);
        let compiles = AtomicUsize::new(0);
        let key = 42u64;

        // The grammar is built inside each thread: Cfe holds Rc and is
        // not Sync, but the cached CompiledParser is.
        thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let p = cache
                        .get_or_compile::<()>(key, || {
                            compiles.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so waiters pile up.
                            thread::sleep(std::time::Duration::from_millis(20));
                            Ok(compiled(&word_grammar(tok)))
                        })
                        .unwrap();
                    assert_eq!(p.parse(b"a b c").unwrap(), 3);
                });
            }
        });
        assert_eq!(compiles.load(Ordering::SeqCst), 1, "single-flight");
        let c = cache.counters();
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 7);
        assert_eq!(c.inflight(), 0);
    }

    #[test]
    fn compile_errors_are_not_cached_and_waiters_retry() {
        let tok = flap_lex::Token::from_index(0);
        let g = word_grammar(tok);
        let cache: ParserCache<i64> = ParserCache::new(4);
        let key = 7u64;

        let err = cache.get_or_compile::<&str>(key, || Err("boom"));
        assert_eq!(err.err(), Some("boom"));
        assert_eq!(cache.len(), 0, "error not cached");

        // The next caller compiles successfully.
        let p = cache
            .get_or_compile::<&str>(key, || Ok(compiled(&g)))
            .unwrap();
        assert_eq!(p.parse(b"a").unwrap(), 1);
        assert_eq!(cache.counters().misses(), 2);
    }

    #[test]
    fn grammar_key_is_stable_and_discriminating() {
        let lexer = word_lexer();
        let tok = flap_lex::Token::from_index(0);

        // Stability: two independent constructions of the same grammar
        // (fresh VarIds each time) produce the same key.
        let k1 = grammar_key(&lexer, &word_grammar(tok));
        let k2 = grammar_key(&lexer, &word_grammar(tok));
        assert_eq!(k1, k2, "key independent of VarId allocation");

        // Shape discrimination.
        let flipped: Cfe<i64> = Cfe::fix(move |x| {
            Cfe::tok_val(tok, 1)
                .then(x, |a, b| a + b)
                .or(Cfe::eps_with(|| 0))
        });
        assert_ne!(k1, grammar_key(&lexer, &flipped), "alt order matters");

        // Lexer discrimination: same grammar, different token regex.
        let mut lx = LexerBuilder::new();
        lx.token("atom", "[a-z]+[0-9]*").unwrap();
        lx.skip(" ").unwrap();
        let other_lexer = lx.build().unwrap();
        assert_ne!(k1, grammar_key(&other_lexer, &word_grammar(tok)));
    }

    #[test]
    fn nested_fix_hashes_by_de_bruijn_level() {
        let lexer = word_lexer();
        // μx. μy. y·x  vs  μx. μy. x·y — distinguishable only through
        // the Var levels.
        let inner_outer: Cfe<i64> =
            Cfe::fix(|x| Cfe::fix(move |y| y.then(x, |a, b| a + b).or(Cfe::eps_with(|| 0))));
        let outer_inner: Cfe<i64> =
            Cfe::fix(|x| Cfe::fix(move |y| x.then(y, |a, b| a + b).or(Cfe::eps_with(|| 0))));
        assert_ne!(
            grammar_key(&lexer, &inner_outer),
            grammar_key(&lexer, &outer_inner)
        );
    }

    #[test]
    fn pool_helper_serves_and_reports_cache_counters() {
        let lexer = word_lexer();
        let tok = flap_lex::Token::from_index(0);
        let g = word_grammar(tok);
        let key = grammar_key(&lexer, &g);
        let cache: ParserCache<i64> = ParserCache::new(4);

        let pool = cache
            .pool::<()>(
                key,
                || Ok(compiled(&g)),
                PoolConfig::default().workers(1).queue_capacity(2),
            )
            .unwrap();
        assert_eq!(pool.submit(&b"a b"[..]).unwrap().wait(), Ok(2));

        // A second pool for the same grammar hits the cache, and both
        // pools' snapshots expose the shared counters.
        let pool2 = cache
            .pool::<()>(
                key,
                || panic!("must not recompile"),
                PoolConfig::default().workers(1).queue_capacity(2),
            )
            .unwrap();
        let snap = pool2.metrics().snapshot();
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        pool.shutdown();
        pool2.shutdown();
    }
}
