//! Parses JSON from a file (or a generated sample) with the fused,
//! staged parser and reports the object count and throughput.
//!
//! ```text
//! cargo run --release -p flap --example json_stats -- path/to/file.json
//! ```

use std::time::Instant;

use flap_grammars::json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let def = json::def();
    let parser = def.flap_parser();

    let (source, data) = match std::env::args().nth(1) {
        Some(path) => (path.clone(), std::fs::read(path)?),
        None => (
            "generated sample (4 MB)".to_string(),
            (def.generate)(7, 4_000_000),
        ),
    };

    let t0 = Instant::now();
    let objects = parser.parse(&data)?;
    let dt = t0.elapsed();

    println!("source:     {source}");
    println!("bytes:      {}", data.len());
    println!("objects:    {objects}");
    println!("time:       {:.2} ms", dt.as_secs_f64() * 1e3);
    println!(
        "throughput: {:.1} MB/s",
        data.len() as f64 / dt.as_secs_f64() / 1e6
    );

    // cross-check against the independent reference parser
    assert_eq!((def.reference)(&data).ok(), Some(objects));
    println!("cross-checked against the handwritten reference parser ✓");
    Ok(())
}
