//! Prints the Rust source flap generates for the s-expression parser
//! — the §5.5 "generated code" excerpt, as a compilable module.
//!
//! ```text
//! cargo run -p flap --example codegen_demo > sexp_generated.rs
//! ```
//!
//! The `flap-bench` crate compiles exactly this output (for all six
//! benchmark grammars) in its build script and benchmarks it as the
//! "staged codegen" series.

use flap::Parser;
use flap_grammars::sexp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let def = sexp::def();
    let parser = Parser::compile((def.lexer)(), &(def.cfe)())?;
    print!("{}", parser.emit_rust("sexp_gen"));
    Ok(())
}
