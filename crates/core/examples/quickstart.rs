//! Quickstart: the paper's running example — an s-expression parser
//! with fused lexing, counting atoms.
//!
//! Run with:
//!
//! ```text
//! cargo run -p flap --example quickstart
//! ```

use flap::{Cfe, LexerBuilder, Parser};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig 3b: the lexer — defined separately from the parser, with a
    // conventional interface (regex => Return token | Skip).
    let mut lx = LexerBuilder::new();
    let atom = lx.token("atom", "[a-z]+")?;
    lx.skip("[ \n]")?;
    let lpar = lx.token("lpar", r"\(")?;
    let rpar = lx.token("rpar", r"\)")?;
    let lexer = lx.build()?;

    // Fig 3c: the grammar —
    // μ sexp. (lpar · (μ sexps. ε ∨ sexp·sexps) · rpar) ∨ atom
    let grammar: Cfe<i64> = Cfe::fix(|sexp| {
        let sexps = Cfe::fix(|sexps| Cfe::eps_with(|| 0).or(sexp.then(sexps, |a, b| a + b)));
        Cfe::tok_val(lpar, 0)
            .then(sexps, |_, n| n)
            .then(Cfe::tok_val(rpar, 0), |n, _| n)
            .or(Cfe::tok_val(atom, 1))
    });

    // type-check → normalize (Fig 4) → fuse (Fig 6) → stage (Fig 10)
    let parser = Parser::compile(lexer, &grammar)?;

    let input = b"(define (double x) (add x x))";
    println!("input:  {}", String::from_utf8_lossy(input));
    println!("atoms:  {}", parser.parse(input)?);

    // the intermediate forms remain inspectable:
    println!(
        "\nDGNF grammar (Fig 3d):\n{}",
        parser.dgnf().display(parser.lexer())
    );
    println!(
        "fused grammar (Fig 3e):\n{}",
        parser.fused().display(parser.lexer().arena())
    );
    println!(
        "sizes: {} lexer rules, {} CFE nodes, {} nonterminals, {} productions, \
         {} fused productions, {} generated states",
        parser.sizes().lex_rules,
        parser.sizes().cfes,
        parser.sizes().nts,
        parser.sizes().prods,
        parser.sizes().fused_prods,
        parser.sizes().functions,
    );
    Ok(())
}
