//! A calculator for the paper's `arith` mini language (arithmetic,
//! comparison, binding, branching), evaluating each line of stdin —
//! or a demo program when stdin is a terminal.
//!
//! ```text
//! echo 'let x = 3 in if x > 2 then x * 100 else 0' | cargo run -p flap --example calc
//! ```

use std::io::{BufRead, IsTerminal};

use flap_grammars::arith::{self, eval};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let def = arith::def();
    let parser = def.flap_parser();

    let stdin = std::io::stdin();
    if stdin.is_terminal() {
        for program in [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "let x = 21 in x + x",
            "if 2 > 1 then 100 else 200",
            "let a = 5 in let b = a * a in b - a",
        ] {
            let ast = parser.parse(program.as_bytes())?;
            println!("{program}  =>  {}", eval(&ast));
        }
        return Ok(());
    }
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parser.parse(line.as_bytes()) {
            Ok(ast) => println!("{}", eval(&ast)),
            Err(e) => eprintln!("error: {e}"),
        }
    }
    Ok(())
}
